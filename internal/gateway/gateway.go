// Package gateway implements the FIRST Inference Gateway API (§3.1): an
// OpenAI-compatible HTTP service that validates identities through the auth
// layer (with introspection caching — Optimization 2), validates request
// bodies, rate-limits users, optionally caches idempotent responses,
// converts requests into fabric tasks routed by the federation layer,
// logs all activity to the store, and exposes metrics, a dashboard, the
// /jobs scheduler view, and the /v1/batches batch mode.
package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/batch"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/store"
)

// WorkerModel selects the gateway's concurrency architecture — the subject
// of Optimization 3 (§5.3.1).
type WorkerModel int

const (
	// WorkerAsync is the Django-Ninja-style asynchronous gateway: requests
	// are offloaded to the fabric immediately and the in-flight window is
	// wide (Gunicorn workers × threads).
	WorkerAsync WorkerModel = iota
	// WorkerSyncLegacy reproduces the original synchronous Django REST
	// deployment: a small fixed worker pool is held for the full duration
	// of every request ("only nine requests could be processed at a
	// time").
	WorkerSyncLegacy
)

// Config tunes the gateway.
type Config struct {
	WorkerModel WorkerModel
	// InFlightLimit is the async in-flight window; the deployment default
	// models Gunicorn's cpu_count×2+1 workers × 4 threads ≈ 428 (§5.2.2).
	InFlightLimit int
	// SyncWorkers is the legacy pool size (default 9).
	SyncWorkers int
	// ProcessingOverhead is the gateway's per-request CPU cost.
	ProcessingOverhead time.Duration
	// UserRatePerSec rate-limits each user (0 = disabled).
	UserRatePerSec float64
	// UserBurst is the rate limiter burst (default 2× rate).
	UserBurst float64
	// CacheTTL enables response caching for identical non-streaming
	// requests when > 0.
	CacheTTL time.Duration
	// DefaultMaxTokens applies when requests omit max_tokens.
	DefaultMaxTokens int
}

func (c *Config) applyDefaults() {
	if c.InFlightLimit <= 0 {
		c.InFlightLimit = 428
	}
	if c.SyncWorkers <= 0 {
		c.SyncWorkers = 9
	}
	if c.UserBurst <= 0 {
		c.UserBurst = c.UserRatePerSec * 2
	}
	if c.DefaultMaxTokens <= 0 {
		c.DefaultMaxTokens = 128
	}
}

// Server is the gateway.
type Server struct {
	cfg     Config
	clk     clock.Clock
	tokens  *auth.TokenCache
	policy  *auth.Policy
	router  *federation.Router
	client  *fabric.Client
	batches *batch.Runner
	st      *store.Store
	catalog *perfmodel.Catalog
	met     *metrics.Registry

	mux  *http.ServeMux
	sem  chan struct{} // worker-model semaphore
	next int64

	mu        sync.Mutex
	respCache map[string]cacheEntry
	limiters  map[string]*userLimiter
	tools     map[string][]ToolRoute
}

type cacheEntry struct {
	body    []byte
	expires time.Time
}

// Deps bundles the gateway's collaborators.
type Deps struct {
	Clock   clock.Clock
	Tokens  *auth.TokenCache
	Policy  *auth.Policy
	Router  *federation.Router
	Client  *fabric.Client
	Batches *batch.Runner
	Store   *store.Store
	Catalog *perfmodel.Catalog
	Metrics *metrics.Registry
}

// New assembles a gateway server.
func New(cfg Config, deps Deps) (*Server, error) {
	cfg.applyDefaults()
	if deps.Clock == nil || deps.Tokens == nil || deps.Router == nil || deps.Client == nil || deps.Store == nil {
		return nil, errors.New("gateway: missing dependencies")
	}
	if deps.Catalog == nil {
		deps.Catalog = perfmodel.Default
	}
	if deps.Metrics == nil {
		deps.Metrics = metrics.NewRegistry()
	}
	if deps.Policy == nil {
		deps.Policy = auth.NewPolicy("")
	}
	s := &Server{
		cfg:       cfg,
		clk:       deps.Clock,
		tokens:    deps.Tokens,
		policy:    deps.Policy,
		router:    deps.Router,
		client:    deps.Client,
		batches:   deps.Batches,
		st:        deps.Store,
		catalog:   deps.Catalog,
		met:       deps.Metrics,
		mux:       http.NewServeMux(),
		respCache: make(map[string]cacheEntry),
		limiters:  make(map[string]*userLimiter),
	}
	workers := cfg.InFlightLimit
	if cfg.WorkerModel == WorkerSyncLegacy {
		workers = cfg.SyncWorkers
	}
	s.sem = make(chan struct{}, workers)
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/chat/completions", s.withAuth(s.handleChat))
	s.mux.HandleFunc("POST /v1/completions", s.withAuth(s.handleCompletion))
	s.mux.HandleFunc("POST /v1/embeddings", s.withAuth(s.handleEmbeddings))
	s.mux.HandleFunc("GET /v1/models", s.withAuth(s.handleModels))
	s.mux.HandleFunc("GET /jobs", s.withAuth(s.handleJobs))
	s.mux.HandleFunc("POST /v1/batches", s.withAuth(s.handleCreateBatch))
	s.mux.HandleFunc("GET /v1/batches", s.withAuth(s.handleListBatches))
	s.mux.HandleFunc("GET /v1/batches/{id}", s.withAuth(s.handleGetBatch))
	s.mux.HandleFunc("GET /v1/batches/{id}/results", s.withAuth(s.handleBatchResults))
	s.mux.HandleFunc("POST /v1/batches/{id}/cancel", s.withAuth(s.handleCancelBatch))
	s.mux.HandleFunc("POST /v1/tools/{name}", s.withAuth(s.handleTool))
	s.mux.HandleFunc("GET /v1/tools", s.withAuth(s.handleListTools))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the registry (tests, dashboard embedding).
func (s *Server) Metrics() *metrics.Registry { return s.met }

type authedHandler func(w http.ResponseWriter, r *http.Request, who auth.TokenInfo)

// withAuth is the §3.1.2 authorization middleware: Bearer token →
// introspection (cached) → per-user rate limit → worker-model admission.
func (s *Server) withAuth(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.clk.Now()
		authz := r.Header.Get("Authorization")
		if !strings.HasPrefix(authz, "Bearer ") {
			s.writeError(w, http.StatusUnauthorized, "invalid_request_error", "missing bearer token")
			return
		}
		token := strings.TrimPrefix(authz, "Bearer ")
		info, err := s.tokens.Introspect(token)
		if err != nil || !info.Active {
			s.met.Counter("auth_rejected").Inc()
			status := http.StatusUnauthorized
			if errors.Is(err, auth.ErrRateLimited) {
				status = http.StatusTooManyRequests
			}
			s.writeError(w, status, "invalid_request_error", "token rejected: "+errString(err))
			return
		}
		if s.cfg.UserRatePerSec > 0 && !s.allowUser(info.Sub) {
			s.met.Counter("rate_limited").Inc()
			s.writeError(w, http.StatusTooManyRequests, "rate_limit_error", "user rate limit exceeded")
			return
		}
		// Worker admission: the legacy sync model holds one of few worker
		// slots for the whole request; async admits a wide window.
		select {
		case s.sem <- struct{}{}:
		default:
			if s.cfg.WorkerModel == WorkerSyncLegacy {
				// Sync workers queue (blocking) like WSGI workers would.
				s.sem <- struct{}{}
			} else {
				s.met.Counter("overloaded").Inc()
				s.writeError(w, http.StatusServiceUnavailable, "overloaded_error", "gateway at capacity")
				return
			}
		}
		defer func() { <-s.sem }()
		if s.cfg.ProcessingOverhead > 0 {
			s.clk.Sleep(s.cfg.ProcessingOverhead)
		}
		s.met.Counter("http_requests").Inc()
		h(w, r, info)
		s.met.Histogram("http_request_seconds").Observe(s.clk.Since(start))
	}
}

func errString(err error) string {
	if err == nil {
		return "inactive token"
	}
	return err.Error()
}

type userLimiter struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (s *Server) allowUser(sub string) bool {
	s.mu.Lock()
	lim, ok := s.limiters[sub]
	if !ok {
		lim = &userLimiter{tokens: s.cfg.UserBurst, last: s.clk.Now()}
		s.limiters[sub] = lim
	}
	s.mu.Unlock()

	lim.mu.Lock()
	defer lim.mu.Unlock()
	now := s.clk.Now()
	elapsed := now.Sub(lim.last).Seconds()
	if elapsed > 0 {
		lim.tokens += elapsed * s.cfg.UserRatePerSec
		if lim.tokens > s.cfg.UserBurst {
			lim.tokens = s.cfg.UserBurst
		}
		lim.last = now
	}
	if lim.tokens >= 1 {
		lim.tokens--
		return true
	}
	return false
}

func (s *Server) writeError(w http.ResponseWriter, status int, typ, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(openaiapi.NewError(typ, msg))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// cacheKey hashes user+body for the response cache.
func cacheKey(sub string, body []byte) string {
	h := sha256.Sum256(append([]byte(sub+"\x00"), body...))
	return hex.EncodeToString(h[:])
}

func (s *Server) cacheGet(key string) ([]byte, bool) {
	if s.cfg.CacheTTL <= 0 {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.respCache[key]
	if !ok || s.clk.Now().After(e.expires) {
		if ok {
			delete(s.respCache, key)
		}
		return nil, false
	}
	return e.body, true
}

func (s *Server) cachePut(key string, body []byte) {
	if s.cfg.CacheTTL <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.respCache) > 4096 { // crude bound; real deployment uses Redis
		s.respCache = make(map[string]cacheEntry)
	}
	s.respCache[key] = cacheEntry{body: body, expires: s.clk.Now().Add(s.cfg.CacheTTL)}
}

func (s *Server) nextID(prefix string) string {
	s.mu.Lock()
	s.next++
	n := s.next
	s.mu.Unlock()
	return fmt.Sprintf("%s-%08d", prefix, n)
}
