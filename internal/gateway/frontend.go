package gateway

// The gateway front-end — response cache, per-user rate limiters, and the
// response ID counter — is the only mutable state every request touches, so
// it is sharded: N power-of-two shards, each with its own lock, its own
// bounded LRU slice of the response cache, and its own token-bucket limiter
// table with idle-entry eviction. Requests scatter by user-sub / cache-key
// hash, so parallel handlers serialize only when they collide on a shard
// (the same single-coordinator bottleneck Pronto identifies in centralized
// federated schedulers). Shards=1 reproduces the historical single-mutex
// front-end.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// respKey is the response-cache key: sha256(user-sub || 0x00 || raw body).
// Keeping the raw digest (not its hex form) avoids an encode allocation on
// the hot path and makes the map key a comparable value type.
type respKey [32]byte

// lruEntry is one cached response on a shard's intrusive LRU list.
// Insertion allocates; hits only splice pointers.
type lruEntry struct {
	key        respKey
	body       []byte
	expires    time.Time
	prev, next *lruEntry
}

// userLimiter is one user's token bucket. All fields are guarded by the
// owning shard's mutex — with the front-end sharded there is no need for a
// second per-user lock, and the single-lock discipline lets the idle sweep
// read `last` safely.
type userLimiter struct {
	tokens float64
	last   time.Time
}

// frontShard is one independently locked slice of the front-end.
type frontShard struct {
	mu sync.Mutex

	// Response cache: bounded LRU (head = most recent). Replaces the old
	// wipe-the-whole-map-at-4096 behaviour, which discarded hot entries
	// together with cold ones.
	entries    map[respKey]*lruEntry
	head, tail *lruEntry
	capEntries int

	// Per-user token buckets with time-based idle eviction.
	limiters  map[string]*userLimiter
	lastSweep time.Time
}

// frontend is the sharded gateway front-end.
type frontend struct {
	clk clock.Clock

	cacheTTL time.Duration
	rate     float64 // tokens per second
	burst    float64
	idleTTL  time.Duration

	mask   uint64
	shards []*frontShard

	next atomic.Int64
}

// newFrontend builds the front-end from an already-defaulted Config.
func newFrontend(cfg Config, clk clock.Clock) *frontend {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	perShard := cfg.CacheEntries / n
	if perShard < 1 {
		perShard = 1
	}
	f := &frontend{
		clk:      clk,
		cacheTTL: cfg.CacheTTL,
		rate:     cfg.UserRatePerSec,
		burst:    cfg.UserBurst,
		idleTTL:  cfg.LimiterIdleTTL,
		mask:     uint64(n - 1),
		shards:   make([]*frontShard, n),
	}
	now := clk.Now()
	for i := range f.shards {
		f.shards[i] = &frontShard{
			entries:    make(map[respKey]*lruEntry),
			capEntries: perShard,
			limiters:   make(map[string]*userLimiter),
			lastSweep:  now,
		}
	}
	return f
}

// hashString is FNV-1a: cheap, allocation-free, and good enough to spread
// user subs uniformly over a power-of-two shard count.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashKey folds the first 8 bytes of the (uniform) sha256 digest.
func hashKey(k respKey) uint64 {
	return binary.LittleEndian.Uint64(k[:8])
}

func (f *frontend) cacheShard(k respKey) *frontShard { return f.shards[hashKey(k)&f.mask] }
func (f *frontend) userShard(sub string) *frontShard { return f.shards[hashString(sub)&f.mask] }

// nextID hands out a process-unique response ID. The counter is atomic: ID
// generation never takes a lock.
func (f *frontend) nextID(prefix string) string {
	return fmt.Sprintf("%s-%08d", prefix, f.next.Add(1))
}

// cacheGet returns a fresh cached body, promoting the entry to MRU. The hit
// path performs no allocation.
//
//first:hotpath pinned by TestFrontendZeroAllocHotPaths (frontend_test.go)
func (f *frontend) cacheGet(key respKey) ([]byte, bool) {
	if f.cacheTTL <= 0 {
		return nil, false
	}
	sh := f.cacheShard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	if f.clk.Now().After(e.expires) {
		sh.unlink(e)
		delete(sh.entries, key)
		return nil, false
	}
	sh.toFront(e)
	return e.body, true
}

// cachePut inserts or refreshes an entry, evicting the shard's LRU tail when
// the per-shard bound is exceeded — hot entries survive insertion churn.
func (f *frontend) cachePut(key respKey, body []byte) {
	if f.cacheTTL <= 0 {
		return
	}
	expires := f.clk.Now().Add(f.cacheTTL)
	sh := f.cacheShard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		e.body = body
		e.expires = expires
		sh.toFront(e)
		return
	}
	e := &lruEntry{key: key, body: body, expires: expires}
	sh.entries[key] = e
	sh.pushFront(e)
	for len(sh.entries) > sh.capEntries && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
	}
}

// cacheLen reports total cached entries across shards (tests, dashboards).
func (f *frontend) cacheLen() int {
	n := 0
	for _, sh := range f.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (sh *frontShard) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *frontShard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *frontShard) toFront(e *lruEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// allowUser charges one token from sub's bucket, creating it on first use.
// Buckets idle longer than idleTTL are evicted by a periodic sweep amortized
// over calls, so a storm of one-shot users cannot grow the table without
// bound. Eviction is lazy by design: a shard sweeps on its own traffic, at
// most once per idleTTL/4, scanning only its 1/N slice of the table — a
// shard that goes quiet keeps its entries until its next request (memory
// stays bounded by the arrivals before the quiet period; no background
// goroutine to manage). The steady-state path (existing bucket, no sweep
// due) allocates nothing.
//
//first:hotpath pinned by TestFrontendZeroAllocHotPaths (frontend_test.go)
func (f *frontend) allowUser(sub string) bool {
	sh := f.userShard(sub)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Read the clock under the lock: a timestamp taken before Lock() can be
	// stale by the time we hold the shard, moving lim.last backward and
	// re-crediting refill time a concurrent call already granted.
	now := f.clk.Now()
	lim, ok := sh.limiters[sub]
	if !ok {
		//firstlint:allow hotpath first-touch limiter allocation; the 0-alloc pin measures the steady state where the user's limiter already exists
		lim = &userLimiter{tokens: f.burst, last: now}
		sh.limiters[sub] = lim
	}
	if f.idleTTL > 0 && now.Sub(sh.lastSweep) >= f.idleTTL/4 {
		f.sweepLocked(sh, now)
	}
	elapsed := now.Sub(lim.last).Seconds()
	if elapsed > 0 {
		lim.tokens += elapsed * f.rate
		if lim.tokens > f.burst {
			lim.tokens = f.burst
		}
	}
	lim.last = now
	if lim.tokens >= 1 {
		lim.tokens--
		return true
	}
	return false
}

// sweepLocked drops buckets idle past the TTL — but only once the bucket's
// natural refill would have reached full burst, so eviction is always
// equivalent to keeping the bucket: a returning user gets exactly what the
// retained state would have granted. Without that check, configs where
// burst exceeds rate×idleTTL would let a spent-out user reset their debt by
// idling one TTL. (rate <= 0 means the limiter is disabled and allowUser is
// never called on this path; TTL alone decides then.)
func (f *frontend) sweepLocked(sh *frontShard, now time.Time) {
	sh.lastSweep = now
	for sub, lim := range sh.limiters {
		idle := now.Sub(lim.last)
		if idle <= f.idleTTL {
			continue
		}
		if f.rate > 0 && lim.tokens+idle.Seconds()*f.rate < f.burst {
			continue // still in debt: a fresh bucket would over-credit
		}
		delete(sh.limiters, sub)
	}
}

// limiterLen reports total live buckets across shards (tests, dashboards).
func (f *frontend) limiterLen() int {
	n := 0
	for _, sh := range f.shards {
		sh.mu.Lock()
		n += len(sh.limiters)
		sh.mu.Unlock()
	}
	return n
}
