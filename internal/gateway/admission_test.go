package gateway_test

// Regression tests for the worker-admission window after its move from a
// semaphore channel to a lock-free atomic counter (async) — accept/reject
// semantics must be unchanged, slots must be released on every exit path,
// and the legacy sync model must still queue instead of rejecting.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/perfmodel"
)

// TestAdmissionWindowReleasesSlots drives many sequential requests through
// a 1-slot async window: every one must be admitted (slots are recycled),
// never 503 — a leak in the release path would wedge the gateway closed.
func TestAdmissionWindowReleasesSlots(t *testing.T) {
	sys, tokens := stressFixture(t, gateway.Config{InFlightLimit: 1}, 20000, 1)
	for i := 0; i < 25; i++ {
		body := fmt.Sprintf(`{"model":"%s","messages":[{"role":"user","content":"q %d"}],"max_tokens":4}`, perfmodel.Llama8B, i)
		rec := doRaw(t, sys, "POST", "/v1/chat/completions", tokens[0], body)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: code %d, want 200 (slot not released?)", i, rec.Code)
		}
	}
	// Error exit paths release too: an invalid body 4xxs before reaching
	// the fabric, and the next valid request must still be admitted.
	if rec := doRaw(t, sys, "POST", "/v1/chat/completions", tokens[0], `{"broken`); rec.Code == http.StatusServiceUnavailable {
		t.Fatalf("invalid body 503ed: admission should reject it downstream")
	}
	body := fmt.Sprintf(`{"model":"%s","messages":[{"role":"user","content":"after"}],"max_tokens":4}`, perfmodel.Llama8B)
	if rec := doRaw(t, sys, "POST", "/v1/chat/completions", tokens[0], body); rec.Code != http.StatusOK {
		t.Fatalf("post-error request: code %d, want 200", rec.Code)
	}
}

// TestAdmissionSyncLegacyQueues pins the legacy model's semantics: a pool
// smaller than the client count never 503s — excess requests block until a
// worker frees, exactly like the nine-worker WSGI deployment.
func TestAdmissionSyncLegacyQueues(t *testing.T) {
	const clients = 8
	sys, tokens := stressFixture(t, gateway.Config{
		WorkerModel: gateway.WorkerSyncLegacy,
		SyncWorkers: 2,
		// A little gateway-side processing keeps workers busy long enough
		// that clients genuinely contend for the two slots.
		ProcessingOverhead: 50 * time.Millisecond,
	}, 20000, clients)
	var wg sync.WaitGroup
	codes := make([]int, clients)
	wg.Add(clients)
	for u := 0; u < clients; u++ {
		go func(u int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"model":"%s","messages":[{"role":"user","content":"sync %d"}],"max_tokens":4}`, perfmodel.Llama8B, u)
			codes[u] = doRaw(t, sys, "POST", "/v1/chat/completions", tokens[u], body).Code
		}(u)
	}
	wg.Wait()
	for u, code := range codes {
		if code != http.StatusOK {
			t.Errorf("client %d: code %d, want 200 (sync workers queue, never reject)", u, code)
		}
	}
	if got := sys.Gateway.Metrics().Counter("overloaded").Value(); got != 0 {
		t.Errorf("overloaded counter = %d, want 0 under the sync model", got)
	}
}
