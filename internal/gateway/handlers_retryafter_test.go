package gateway

import (
	"net/http/httptest"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/metrics"
)

// TestWriteInferErrorRetryAfterFloor pins the Retry-After floor on the
// all-circuits-open 503: a breaker horizon of zero or negative duration
// (the soonest probe is due now, or the clock raced past it) must still
// advertise at least one second — "Retry-After: 0" invites an immediate
// hammer-loop and some clients reject it outright.
func TestWriteInferErrorRetryAfterFloor(t *testing.T) {
	s := &Server{met: metrics.NewRegistry()}
	cases := []struct {
		name  string
		after time.Duration
		want  string
	}{
		{"zero horizon", 0, "1"},
		{"negative horizon", -3 * time.Second, "1"},
		{"sub-second rounds up", 200 * time.Millisecond, "1"},
		{"exact seconds pass through", 3 * time.Second, "3"},
		{"fractional rounds up", 2500 * time.Millisecond, "3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.writeInferError(rec, &federation.AllOpenError{Model: "m", RetryAfter: c.after})
			if rec.Code != 503 {
				t.Fatalf("status = %d, want 503", rec.Code)
			}
			if got := rec.Header().Get("Retry-After"); got != c.want {
				t.Errorf("Retry-After = %q, want %q", got, c.want)
			}
		})
	}
}
