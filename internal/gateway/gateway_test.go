package gateway_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

// gatewayFixture boots a testbed with custom gateway config.
func gatewayFixture(t *testing.T, cfg gateway.Config) (*core.System, string) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Clock: clock.NewScaled(20000),
		Clusters: []core.ClusterSpec{
			{Name: "sophia", Nodes: 4, GPUsPerNode: 8},
		},
		Deployments: []core.DeploymentSpec{
			{Model: perfmodel.Llama8B, Clusters: []string{"sophia"},
				Config: fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1}},
		},
		Gateway: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.RegisterUser("u1", "u1@anl.gov"); err != nil {
		t.Fatal(err)
	}
	grant, err := sys.Login("u1")
	if err != nil {
		t.Fatal(err)
	}
	return sys, grant.AccessToken
}

func doRaw(t *testing.T, sys *core.System, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	sys.Gateway.ServeHTTP(rec, req)
	return rec
}

func TestMissingAndMalformedAuth(t *testing.T) {
	sys, _ := gatewayFixture(t, gateway.Config{})
	if rec := doRaw(t, sys, "GET", "/v1/models", "", ""); rec.Code != 401 {
		t.Errorf("no token: %d", rec.Code)
	}
	if rec := doRaw(t, sys, "GET", "/v1/models", "fa_fake.sig", ""); rec.Code != 401 {
		t.Errorf("fake token: %d", rec.Code)
	}
	var envelope openaiapi.ErrorResponse
	rec := doRaw(t, sys, "GET", "/v1/models", "", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Type == "" {
		t.Errorf("error envelope malformed: %s", rec.Body.String())
	}
}

func TestMalformedRequestBodies(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{})
	cases := []struct {
		path, body string
	}{
		{"/v1/chat/completions", `{broken`},
		{"/v1/chat/completions", `{"model":"","messages":[]}`},
		{"/v1/chat/completions", `{"model":"m","messages":[{"role":"alien","content":"x"}]}`},
		{"/v1/completions", `{"model":"m"}`},
		{"/v1/embeddings", `{"model":"m"}`},
	}
	for _, c := range cases {
		rec := doRaw(t, sys, "POST", c.path, token, c.body)
		if rec.Code != 400 {
			t.Errorf("%s %q: code %d, want 400", c.path, c.body, rec.Code)
		}
	}
}

func TestUnroutedModel404(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{})
	body := `{"model":"meta-llama/Llama-3.3-70B-Instruct","messages":[{"role":"user","content":"x"}]}`
	rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, body)
	// 70B is in the catalog but has no route on this one-model fixture.
	if rec.Code != 502 && rec.Code != 404 {
		t.Errorf("unrouted model: code %d", rec.Code)
	}
}

func TestUserRateLimiting(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{UserRatePerSec: 0.001, UserBurst: 2})
	var limited int
	for i := 0; i < 6; i++ {
		rec := doRaw(t, sys, "GET", "/v1/models", token, "")
		if rec.Code == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited < 3 {
		t.Errorf("rate limiter fired %d/6 times, want ≥ 3 (burst 2)", limited)
	}
}

func TestResponseCache(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{CacheTTL: time.Hour})
	c := client.New("", token, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req := openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "cached question"}},
		MaxTokens: 8,
	}
	if _, err := c.ChatCompletion(ctx, req); err != nil {
		t.Fatal(err)
	}
	// Identical raw request → cache hit header.
	body, _ := json.Marshal(struct {
		openaiapi.ChatCompletionRequest
	}{req})
	_ = body
	raw, _ := json.Marshal(req)
	rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, string(raw))
	if rec.Code != 200 {
		t.Fatalf("cached request code %d", rec.Code)
	}
	if sys.Gateway.Metrics().Counter("cache_hits").Value() == 0 {
		t.Error("cache hit not recorded")
	}
}

func TestMetricsAndDashboardEndpoints(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{})
	c := client.New("", token, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "metrics"}},
		MaxTokens: 8,
	})
	rec := doRaw(t, sys, "GET", "/metrics", "", "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "first_http_requests_total") {
		t.Errorf("metrics endpoint: %d %q", rec.Code, rec.Body.String()[:80])
	}
	// The token cache's singleflight stats are exposed as gauges (ROADMAP:
	// herd suppression must be visible on the dashboard). One authenticated
	// request has happened, so the cache holds ≥1 entry and saw ≥1 miss.
	for _, name := range []string{
		"first_auth_cache_entries", "first_auth_cache_coalesced",
		"first_auth_cache_hits", "first_auth_cache_misses",
	} {
		if !strings.Contains(rec.Body.String(), name+" ") {
			t.Errorf("metrics endpoint missing %s", name)
		}
	}
	rec = doRaw(t, sys, "GET", "/dashboard", "", "")
	if rec.Code != 200 {
		t.Fatalf("dashboard code %d", rec.Code)
	}
	var d gateway.Dashboard
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Totals.Requests < 1 || d.Totals.OutputTokens < 8 {
		t.Errorf("dashboard totals = %+v", d.Totals)
	}
	if len(d.Models) == 0 {
		t.Error("dashboard missing model statuses")
	}
	if d.Metrics.Gauges["auth_cache_entries"] < 1 {
		t.Errorf("dashboard auth_cache_entries = %d, want ≥ 1 after an authed request",
			d.Metrics.Gauges["auth_cache_entries"])
	}
	if d.Metrics.Gauges["auth_cache_misses"] < 1 {
		t.Errorf("dashboard auth_cache_misses = %d, want ≥ 1", d.Metrics.Gauges["auth_cache_misses"])
	}
}

func TestHealthz(t *testing.T) {
	sys, _ := gatewayFixture(t, gateway.Config{})
	if rec := doRaw(t, sys, "GET", "/healthz", "", ""); rec.Code != 200 {
		t.Errorf("healthz = %d", rec.Code)
	}
}

func TestRequestLoggingToStore(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{})
	c := client.New("", token, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "log me"}},
		MaxTokens: 4,
	})
	recent := sys.Store.RecentRequests(1)
	if len(recent) != 1 {
		t.Fatal("request not logged")
	}
	r := recent[0]
	if r.User != "u1" || r.Model != perfmodel.Llama8B || r.OutputTok != 4 || r.Status != "ok" {
		t.Errorf("logged row = %+v", r)
	}
	if r.Endpoint != "ep-sophia" {
		t.Errorf("endpoint = %s", r.Endpoint)
	}
}
