package gateway

import (
	"encoding/json"
	"net/http"
	"sort"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/store"
)

// Tool execution implements the paper's §7 future-work direction: "enable
// direct job submission for users, allowing AI Models to execute custom
// codes as tool calls and run traditional HPC simulations through the same
// API interface". A tool is an administrator-pre-registered fabric function
// (the §3.2.2 security model: only pre-registered functions ever execute),
// exposed at POST /v1/tools/{name} and gated by a Globus group so
// facilities control who may launch custom codes.

// ToolRequest is POST /v1/tools/{name}.
type ToolRequest struct {
	// Endpoint optionally pins a specific endpoint; empty routes to the
	// first endpoint exposing the tool.
	Endpoint string `json:"endpoint,omitempty"`
	// Payload is passed verbatim to the registered function.
	Payload json.RawMessage `json:"payload"`
}

// ToolResponse wraps a tool result.
type ToolResponse struct {
	Tool     string          `json:"tool"`
	Endpoint string          `json:"endpoint"`
	Result   json.RawMessage `json:"result"`
}

// ToolRoute describes one registered tool exposure.
type ToolRoute struct {
	Name     string
	Endpoint *fabric.Endpoint
	// Group restricts execution to members (empty = any authenticated
	// user with the base scope).
	Group string
}

// RegisterTool exposes a pre-registered endpoint function through the
// gateway. The function must already exist on the endpoint.
func (s *Server) RegisterTool(route ToolRoute) {
	s.toolsMu.Lock()
	defer s.toolsMu.Unlock()
	if s.tools == nil {
		s.tools = make(map[string][]ToolRoute)
	}
	s.tools[route.Name] = append(s.tools[route.Name], route)
}

func (s *Server) toolRoutes(name string) []ToolRoute {
	s.toolsMu.Lock()
	defer s.toolsMu.Unlock()
	return append([]ToolRoute(nil), s.tools[name]...)
}

// handleTool serves POST /v1/tools/{name}.
func (s *Server) handleTool(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	name := r.PathValue("name")
	routes := s.toolRoutes(name)
	if len(routes) == 0 {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "unknown tool: "+name)
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req ToolRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
			return
		}
	}
	var route *ToolRoute
	for i := range routes {
		if req.Endpoint == "" || routes[i].Endpoint.ID() == req.Endpoint {
			route = &routes[i]
			break
		}
	}
	if route == nil {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "tool not available on endpoint "+req.Endpoint)
		return
	}
	if route.Group != "" {
		member := false
		for _, g := range who.Groups {
			if g == route.Group {
				member = true
				break
			}
		}
		if !member {
			s.writeError(w, http.StatusForbidden, "permission_error", "tool requires group "+route.Group)
			return
		}
	}
	s.met.Counter("tool_calls").Inc()
	result, err := s.client.Run(r.Context(), route.Endpoint.ID(), name, req.Payload)
	s.st.LogRequest(store.RequestLog{
		User:      who.Sub,
		Model:     "tool:" + name,
		Endpoint:  route.Endpoint.ID(),
		Cluster:   route.Endpoint.ClusterName(),
		Kind:      store.RequestKind("tool"),
		Status:    statusOf(err),
		CreatedAt: s.clk.Now(),
	})
	if err != nil {
		s.writeError(w, http.StatusBadGateway, "api_error", err.Error())
		return
	}
	if !json.Valid(result) {
		quoted, _ := json.Marshal(string(result))
		result = quoted
	}
	s.writeJSON(w, http.StatusOK, ToolResponse{Tool: name, Endpoint: route.Endpoint.ID(), Result: result})
}

// handleListTools serves GET /v1/tools.
func (s *Server) handleListTools(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	s.toolsMu.Lock()
	out := struct {
		Object string   `json:"object"`
		Data   []string `json:"data"`
	}{Object: "list"}
	for name := range s.tools {
		out.Data = append(out.Data, name)
	}
	s.toolsMu.Unlock()
	sort.Strings(out.Data)
	s.writeJSON(w, http.StatusOK, out)
}

func statusOf(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}
