package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/store"
	"github.com/argonne-first/first/internal/workload"
)

const maxBodyBytes = 32 << 20

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "cannot read body")
		return nil, false
	}
	return body, true
}

// handleChat serves POST /v1/chat/completions.
func (s *Server) handleChat(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.ChatCompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}

	var promptTok int
	var lastUser string
	for _, m := range req.Messages {
		promptTok += workload.EstimateTokens(m.Content)
		if m.Role == "user" {
			lastUser = m.Content
		}
	}
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = s.cfg.DefaultMaxTokens
	}

	key := cacheKey(who.Sub, body)
	if !req.Stream {
		if cached, ok := s.cacheGet(key); ok {
			s.met.Counter("cache_hits").Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-First-Cache", "hit")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(cached)
			return
		}
	}

	res, meta, err := s.infer(r, who, req.Model, fabric.InferRequest{
		Model:     req.Model,
		PromptTok: promptTok,
		OutputTok: maxTok,
		Prompt:    lastUser,
		WantText:  true,
	})
	if err != nil {
		s.logRequest(who, req.Model, meta, store.KindChat, promptTok, 0, "error")
		s.writeInferError(w, err)
		return
	}
	s.logRequest(who, req.Model, meta, store.KindChat, res.PromptTok, res.OutputTok, "ok")

	resp := openaiapi.ChatCompletionResponse{
		ID:      s.nextID("chatcmpl"),
		Object:  "chat.completion",
		Created: s.clk.Now().Unix(),
		Model:   req.Model,
		Choices: []openaiapi.Choice{{
			Index:        0,
			Message:      &openaiapi.Message{Role: "assistant", Content: res.Text},
			FinishReason: "stop",
		}},
		Usage: openaiapi.Usage{
			PromptTokens:     res.PromptTok,
			CompletionTokens: res.OutputTok,
			TotalTokens:      res.PromptTok + res.OutputTok,
		},
	}
	if req.Stream {
		s.streamChat(w, resp)
		return
	}
	out, _ := json.Marshal(resp)
	s.cachePut(key, out)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// streamChat replays a finished completion as OpenAI-style SSE deltas.
// (The fabric returns whole results; token-level streaming stops at the
// gateway boundary — see DESIGN.md.)
func (s *Server) streamChat(w http.ResponseWriter, resp openaiapi.ChatCompletionResponse) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	content := ""
	if len(resp.Choices) > 0 && resp.Choices[0].Message != nil {
		content = resp.Choices[0].Message.Content
	}
	words := strings.Fields(content)
	const chunkWords = 16
	for i := 0; i < len(words); i += chunkWords {
		end := i + chunkWords
		if end > len(words) {
			end = len(words)
		}
		piece := strings.Join(words[i:end], " ")
		if i > 0 {
			piece = " " + piece
		}
		chunk := openaiapi.StreamChunk{
			ID:      resp.ID,
			Object:  "chat.completion.chunk",
			Created: resp.Created,
			Model:   resp.Model,
			Choices: []openaiapi.Choice{{Index: 0, Delta: &openaiapi.Message{Role: "assistant", Content: piece}}},
		}
		if err := openaiapi.WriteSSE(w, chunk); err != nil {
			// The client went away mid-stream; the missing [DONE] lets the
			// reader detect the truncation as a typed error.
			s.met.Counter("stream_aborts").Inc()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := openaiapi.StreamChunk{
		ID: resp.ID, Object: "chat.completion.chunk", Created: resp.Created, Model: resp.Model,
		Choices: []openaiapi.Choice{{Index: 0, Delta: &openaiapi.Message{}, FinishReason: "stop"}},
	}
	_ = openaiapi.WriteSSE(w, final)
	_ = openaiapi.WriteSSEDone(w)
	if flusher != nil {
		flusher.Flush()
	}
}

// handleCompletion serves POST /v1/completions.
func (s *Server) handleCompletion(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.CompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	promptTok := workload.EstimateTokens(req.Prompt)
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = s.cfg.DefaultMaxTokens
	}
	res, meta, err := s.infer(r, who, req.Model, fabric.InferRequest{
		Model:     req.Model,
		PromptTok: promptTok,
		OutputTok: maxTok,
		Prompt:    req.Prompt,
		WantText:  true,
	})
	if err != nil {
		s.logRequest(who, req.Model, meta, store.KindCompletion, promptTok, 0, "error")
		s.writeInferError(w, err)
		return
	}
	s.logRequest(who, req.Model, meta, store.KindCompletion, res.PromptTok, res.OutputTok, "ok")
	s.writeJSON(w, http.StatusOK, openaiapi.CompletionResponse{
		ID:      s.nextID("cmpl"),
		Object:  "text_completion",
		Created: s.clk.Now().Unix(),
		Model:   req.Model,
		Choices: []openaiapi.Choice{{Index: 0, Text: res.Text, FinishReason: "stop"}},
		Usage: openaiapi.Usage{
			PromptTokens:     res.PromptTok,
			CompletionTokens: res.OutputTok,
			TotalTokens:      res.PromptTok + res.OutputTok,
		},
	})
}

// infer routes through the federation layer and executes via the fabric,
// with retry/failover under the configured resilience policy.
func (s *Server) infer(r *http.Request, who auth.TokenInfo, model string, req fabric.InferRequest) (fabric.InferResult, routeMeta, error) {
	var res fabric.InferResult
	meta, err := s.routeAndRun(r, model, func(ctx context.Context, endpointID string) error {
		var ierr error
		res, ierr = s.client.Infer(ctx, endpointID, req)
		return ierr
	})
	return res, meta, err
}

// routeAndRun is the resilience core of the live path: route → acquire
// breaker admission → run → record outcome, failing over to the next-best
// endpoint (failed ones excluded) until the attempt budget runs out. At the
// zero-value Retry policy this is exactly one route + one run with no
// breaker bookkeeping — behavior-identical to the historical path.
//
// An endpoint-side fabric.ErrUnauthorized triggers one token-cache recheck
// (the cached introspection may be stale) and, when the token proves still
// valid, one free replay against the same endpoint — an auth disagreement is
// not an endpoint health signal, so it neither feeds the breaker as a
// failure vote nor burns the failover budget.
func (s *Server) routeAndRun(r *http.Request, model string, run func(ctx context.Context, endpointID string) error) (routeMeta, error) {
	var (
		meta      routeMeta
		avoid     []string
		lastErr   error
		rechecked bool
	)
	for attempt := 0; attempt < s.cfg.Retry.Attempts(); attempt++ {
		if attempt > 0 {
			s.met.Counter("failover_attempts").Inc()
			if d := s.cfg.Retry.Delay(attempt-1, 0); d > 0 {
				s.clk.Sleep(d)
			}
		}
		decision, err := s.router.RouteAvoiding(model, avoid)
		if err != nil {
			// Failover exhausted the candidate set: the attempt error is
			// the story, not the bare routing failure. A first-attempt
			// routing error (lastErr == nil) passes through unchanged.
			if lastErr != nil && errors.Is(err, federation.ErrNoCandidates) {
				return meta, lastErr
			}
			return meta, err
		}
		id := decision.Endpoint.ID()
		if s.breakers != nil && !s.breakers.Acquire(id, s.breakerNow()) {
			// Lost the half-open probe race to a concurrent request: this
			// endpoint is spoken for, look elsewhere without spending an
			// attempt.
			avoid = append(avoid, id)
			attempt--
			continue
		}
		meta = routeMeta{endpoint: id, cluster: decision.Endpoint.ClusterName(), reason: string(decision.Reason)}
		s.met.Counter("route_" + string(decision.Reason)).Inc()
		s.met.Counter("infer_attempts").Inc()
		ctx := r.Context()
		var cancel context.CancelFunc
		if s.cfg.Retry.AttemptTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Retry.AttemptTimeout)
		}
		start := s.clk.Now()
		err = run(ctx, id)
		if cancel != nil {
			cancel()
		}
		if s.breakers != nil {
			// Caller-side cancellation and auth disagreements say nothing
			// about endpoint health; everything else votes.
			failure := err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, fabric.ErrUnauthorized)
			s.breakers.Record(id, s.breakerNow(), s.clk.Since(start), !failure)
		}
		if err == nil {
			if attempt > 0 {
				s.met.Counter("failover_success").Inc()
			}
			return meta, nil
		}
		lastErr = err
		if errors.Is(err, fabric.ErrUnauthorized) {
			if rechecked {
				return meta, err
			}
			rechecked = true
			s.met.Counter("auth_rechecks").Inc()
			token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			if info, rerr := s.tokens.Recheck(token); rerr == nil && info.Active {
				attempt-- // token still valid: replay, endpoint stays eligible
				continue
			}
			return meta, err
		}
		if r.Context().Err() != nil {
			return meta, err
		}
		avoid = append(avoid, id)
	}
	return meta, lastErr
}

// writeInferError maps a routeAndRun failure onto the wire: all-circuits-
// open becomes a 503 with a Retry-After derived from the soonest half-open
// probe (load shed, counted), an endpoint-side credential rejection that
// survived the recheck becomes 401, and everything else stays the
// historical 502 api_error.
func (s *Server) writeInferError(w http.ResponseWriter, err error) {
	var allOpen *federation.AllOpenError
	switch {
	case errors.As(err, &allOpen):
		s.met.Counter("load_shed").Inc()
		secs := int((allOpen.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.writeError(w, http.StatusServiceUnavailable, "overloaded_error", err.Error())
	case errors.Is(err, fabric.ErrUnauthorized):
		s.writeError(w, http.StatusUnauthorized, "invalid_request_error", err.Error())
	default:
		s.writeError(w, http.StatusBadGateway, "api_error", err.Error())
	}
}

type routeMeta struct {
	endpoint string
	cluster  string
	reason   string
}

func (s *Server) logRequest(who auth.TokenInfo, model string, meta routeMeta, kind store.RequestKind, promptTok, outputTok int, status string) {
	s.st.LogRequest(store.RequestLog{
		User:      who.Sub,
		Model:     model,
		Endpoint:  meta.endpoint,
		Cluster:   meta.cluster,
		Kind:      kind,
		PromptTok: promptTok,
		OutputTok: outputTok,
		Status:    status,
		CreatedAt: s.clk.Now(),
	})
	if outputTok > 0 {
		s.met.Counter("output_tokens").Add(int64(outputTok))
	}
	s.met.Counter("requests_" + string(kind)).Inc()
}

// handleEmbeddings serves POST /v1/embeddings.
func (s *Server) handleEmbeddings(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.EmbeddingRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	var res fabric.EmbedResult
	meta, err := s.routeAndRun(r, req.Model, func(ctx context.Context, endpointID string) error {
		var eerr error
		res, eerr = s.client.Embed(ctx, endpointID, fabric.EmbedRequest{Model: req.Model, Inputs: req.Input})
		return eerr
	})
	var promptTok int
	for _, in := range req.Input {
		promptTok += workload.EstimateTokens(in)
	}
	if err != nil {
		var allOpen *federation.AllOpenError
		if errors.As(err, &allOpen) {
			s.writeInferError(w, err)
			return
		}
		if meta.endpoint == "" {
			// Routing never reached an endpoint: the historical 404 for
			// unrouted models, unlogged as before.
			s.writeError(w, http.StatusNotFound, "invalid_request_error", err.Error())
			return
		}
		s.logRequest(who, req.Model, meta, store.KindEmbedding, promptTok, 0, "error")
		s.writeInferError(w, err)
		return
	}
	s.logRequest(who, req.Model, meta, store.KindEmbedding, promptTok, 0, "ok")
	data := make([]openaiapi.EmbeddingData, len(res.Vectors))
	for i, v := range res.Vectors {
		data[i] = openaiapi.EmbeddingData{Object: "embedding", Index: i, Embedding: v}
	}
	s.writeJSON(w, http.StatusOK, openaiapi.EmbeddingResponse{
		Object: "list",
		Model:  req.Model,
		Data:   data,
		Usage:  openaiapi.Usage{PromptTokens: promptTok, TotalTokens: promptTok},
	})
}

// handleModels serves GET /v1/models: the federated model registry.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	names := s.router.Models()
	sort.Strings(names)
	list := openaiapi.ModelList{Object: "list"}
	for _, n := range names {
		entry := openaiapi.Model{ID: n, Object: "model", OwnedBy: "first"}
		if spec, err := s.catalog.Lookup(n); err == nil {
			entry.Kind = spec.Kind.String()
		}
		list.Data = append(list.Data, entry)
	}
	s.writeJSON(w, http.StatusOK, list)
}

// handleJobs serves GET /jobs (§4.3): scheduler-backed model availability.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	var resp openaiapi.JobsResponse
	names := s.router.Models()
	sort.Strings(names)
	for _, model := range names {
		for _, ep := range s.router.Endpoints(model) {
			if d, ok := ep.Deployment(model); ok {
				st := d.Status()
				resp.Models = append(resp.Models, openaiapi.ModelJobStatus{
					Model: st.Model, Endpoint: st.Endpoint, Cluster: st.Cluster,
					State: st.State, Running: st.Running, Starting: st.Starting, Queued: st.Queued,
				})
			} else {
				resp.Models = append(resp.Models, openaiapi.ModelJobStatus{
					Model: model, Endpoint: ep.ID(), Cluster: ep.ClusterName(), State: "cold",
				})
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCreateBatch serves POST /v1/batches (§4.4).
func (s *Server) handleCreateBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	if s.batches == nil {
		s.writeError(w, http.StatusNotImplemented, "api_error", "batch mode not configured")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.CreateBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "model is required")
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	decision, err := s.router.Route(req.Model)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", err.Error())
		return
	}
	id, err := s.batches.Submit(who.Sub, req.Model, req.InputLines, decision.Endpoint)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	b, _ := s.st.GetBatch(id)
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

func batchToObject(b store.Batch) openaiapi.BatchObject {
	return openaiapi.BatchObject{
		ID:           b.ID,
		Object:       "batch",
		Model:        b.Model,
		Status:       string(b.State),
		Total:        b.Total,
		Completed:    b.Completed,
		OutputTokens: b.OutputTokens,
		CreatedAt:    b.CreatedAt.Unix(),
		Error:        b.Error,
	}
}

// handleListBatches serves GET /v1/batches.
func (s *Server) handleListBatches(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	batches := s.st.ListBatches(who.Sub)
	out := struct {
		Object string                  `json:"object"`
		Data   []openaiapi.BatchObject `json:"data"`
	}{Object: "list"}
	for _, b := range batches {
		out.Data = append(out.Data, batchToObject(b))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleGetBatch serves GET /v1/batches/{id}.
func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || (b.User != who.Sub && b.User != "") {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

// handleBatchResults serves GET /v1/batches/{id}/results as JSONL.
func (s *Server) handleBatchResults(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || b.User != who.Sub {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	lines, ok := s.batches.Results(id)
	if !ok {
		s.writeError(w, http.StatusConflict, "invalid_request_error", "batch not completed")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, line := range lines {
		_ = enc.Encode(line)
	}
}

// handleCancelBatch serves POST /v1/batches/{id}/cancel.
func (s *Server) handleCancelBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || b.User != who.Sub {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	s.batches.Cancel(id)
	b, _ = s.st.GetBatch(id)
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

// refreshAuthMetrics copies the token cache's internal stats into registry
// gauges so the dashboard can show herd suppression (singleflight
// coalescing) and cache population under storms. Pull-on-read keeps the
// cache's hot Introspect path free of registry traffic.
func (s *Server) refreshAuthMetrics() {
	hits, misses := s.tokens.Stats()
	s.met.Gauge("auth_cache_hits").Set(hits)
	s.met.Gauge("auth_cache_misses").Set(misses)
	s.met.Gauge("auth_cache_coalesced").Set(s.tokens.Coalesced())
	s.met.Gauge("auth_cache_entries").Set(int64(s.tokens.Len()))
	s.met.Gauge("auth_cache_invalidations").Set(s.tokens.Invalidations())
}

// refreshResilienceMetrics mirrors breaker state into gauges (pull-on-read,
// like the auth cache stats, keeping Record/CanAttempt registry-free).
func (s *Server) refreshResilienceMetrics() {
	if s.breakers == nil {
		return
	}
	open, halfOpen := s.breakers.StateCounts()
	s.met.Gauge("breaker_open").Set(open)
	s.met.Gauge("breaker_half_open").Set(halfOpen)
	s.met.Gauge("breaker_trips").Set(s.breakers.Trips())
}

// handleMetrics serves GET /metrics (Prometheus-style text).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshAuthMetrics()
	s.refreshResilienceMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.met.Expose())
}

// Dashboard is the §3.1.1 web dashboard's JSON document.
type Dashboard struct {
	GeneratedAt time.Time                  `json:"generated_at"`
	Totals      store.Totals               `json:"totals"`
	Metrics     metrics.RegistrySnapshot   `json:"metrics"`
	Models      []openaiapi.ModelJobStatus `json:"models"`
}

// handleDashboard serves GET /dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	s.refreshAuthMetrics()
	s.refreshResilienceMetrics()
	d := Dashboard{
		GeneratedAt: s.clk.Now(),
		Totals:      s.st.Totals(),
		Metrics:     s.met.Snapshot(),
	}
	names := s.router.Models()
	sort.Strings(names)
	for _, model := range names {
		for _, ep := range s.router.Endpoints(model) {
			if dpl, ok := ep.Deployment(model); ok {
				st := dpl.Status()
				d.Models = append(d.Models, openaiapi.ModelJobStatus{
					Model: st.Model, Endpoint: st.Endpoint, Cluster: st.Cluster,
					State: st.State, Running: st.Running, Starting: st.Starting, Queued: st.Queued,
				})
			}
		}
	}
	s.writeJSON(w, http.StatusOK, d)
}
