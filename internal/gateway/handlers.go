package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/store"
	"github.com/argonne-first/first/internal/workload"
)

const maxBodyBytes = 32 << 20

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "cannot read body")
		return nil, false
	}
	return body, true
}

// handleChat serves POST /v1/chat/completions.
func (s *Server) handleChat(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.ChatCompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}

	var promptTok int
	var lastUser string
	for _, m := range req.Messages {
		promptTok += workload.EstimateTokens(m.Content)
		if m.Role == "user" {
			lastUser = m.Content
		}
	}
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = s.cfg.DefaultMaxTokens
	}

	key := cacheKey(who.Sub, body)
	if !req.Stream {
		if cached, ok := s.cacheGet(key); ok {
			s.met.Counter("cache_hits").Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-First-Cache", "hit")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(cached)
			return
		}
	}

	res, meta, err := s.infer(r, who, req.Model, fabric.InferRequest{
		Model:     req.Model,
		PromptTok: promptTok,
		OutputTok: maxTok,
		Prompt:    lastUser,
		WantText:  true,
	})
	if err != nil {
		s.logRequest(who, req.Model, meta, store.KindChat, promptTok, 0, "error")
		s.writeError(w, http.StatusBadGateway, "api_error", err.Error())
		return
	}
	s.logRequest(who, req.Model, meta, store.KindChat, res.PromptTok, res.OutputTok, "ok")

	resp := openaiapi.ChatCompletionResponse{
		ID:      s.nextID("chatcmpl"),
		Object:  "chat.completion",
		Created: s.clk.Now().Unix(),
		Model:   req.Model,
		Choices: []openaiapi.Choice{{
			Index:        0,
			Message:      &openaiapi.Message{Role: "assistant", Content: res.Text},
			FinishReason: "stop",
		}},
		Usage: openaiapi.Usage{
			PromptTokens:     res.PromptTok,
			CompletionTokens: res.OutputTok,
			TotalTokens:      res.PromptTok + res.OutputTok,
		},
	}
	if req.Stream {
		s.streamChat(w, resp)
		return
	}
	out, _ := json.Marshal(resp)
	s.cachePut(key, out)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// streamChat replays a finished completion as OpenAI-style SSE deltas.
// (The fabric returns whole results; token-level streaming stops at the
// gateway boundary — see DESIGN.md.)
func (s *Server) streamChat(w http.ResponseWriter, resp openaiapi.ChatCompletionResponse) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	content := ""
	if len(resp.Choices) > 0 && resp.Choices[0].Message != nil {
		content = resp.Choices[0].Message.Content
	}
	words := strings.Fields(content)
	const chunkWords = 16
	for i := 0; i < len(words); i += chunkWords {
		end := i + chunkWords
		if end > len(words) {
			end = len(words)
		}
		piece := strings.Join(words[i:end], " ")
		if i > 0 {
			piece = " " + piece
		}
		chunk := openaiapi.StreamChunk{
			ID:      resp.ID,
			Object:  "chat.completion.chunk",
			Created: resp.Created,
			Model:   resp.Model,
			Choices: []openaiapi.Choice{{Index: 0, Delta: &openaiapi.Message{Role: "assistant", Content: piece}}},
		}
		if err := openaiapi.WriteSSE(w, chunk); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := openaiapi.StreamChunk{
		ID: resp.ID, Object: "chat.completion.chunk", Created: resp.Created, Model: resp.Model,
		Choices: []openaiapi.Choice{{Index: 0, Delta: &openaiapi.Message{}, FinishReason: "stop"}},
	}
	_ = openaiapi.WriteSSE(w, final)
	_ = openaiapi.WriteSSEDone(w)
	if flusher != nil {
		flusher.Flush()
	}
}

// handleCompletion serves POST /v1/completions.
func (s *Server) handleCompletion(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.CompletionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	promptTok := workload.EstimateTokens(req.Prompt)
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = s.cfg.DefaultMaxTokens
	}
	res, meta, err := s.infer(r, who, req.Model, fabric.InferRequest{
		Model:     req.Model,
		PromptTok: promptTok,
		OutputTok: maxTok,
		Prompt:    req.Prompt,
		WantText:  true,
	})
	if err != nil {
		s.logRequest(who, req.Model, meta, store.KindCompletion, promptTok, 0, "error")
		s.writeError(w, http.StatusBadGateway, "api_error", err.Error())
		return
	}
	s.logRequest(who, req.Model, meta, store.KindCompletion, res.PromptTok, res.OutputTok, "ok")
	s.writeJSON(w, http.StatusOK, openaiapi.CompletionResponse{
		ID:      s.nextID("cmpl"),
		Object:  "text_completion",
		Created: s.clk.Now().Unix(),
		Model:   req.Model,
		Choices: []openaiapi.Choice{{Index: 0, Text: res.Text, FinishReason: "stop"}},
		Usage: openaiapi.Usage{
			PromptTokens:     res.PromptTok,
			CompletionTokens: res.OutputTok,
			TotalTokens:      res.PromptTok + res.OutputTok,
		},
	})
}

// infer routes through the federation layer and executes via the fabric.
func (s *Server) infer(r *http.Request, who auth.TokenInfo, model string, req fabric.InferRequest) (fabric.InferResult, routeMeta, error) {
	decision, err := s.router.Route(model)
	if err != nil {
		return fabric.InferResult{}, routeMeta{}, err
	}
	meta := routeMeta{endpoint: decision.Endpoint.ID(), cluster: decision.Endpoint.ClusterName(), reason: string(decision.Reason)}
	s.met.Counter("route_" + string(decision.Reason)).Inc()
	res, err := s.client.Infer(r.Context(), decision.Endpoint.ID(), req)
	return res, meta, err
}

type routeMeta struct {
	endpoint string
	cluster  string
	reason   string
}

func (s *Server) logRequest(who auth.TokenInfo, model string, meta routeMeta, kind store.RequestKind, promptTok, outputTok int, status string) {
	s.st.LogRequest(store.RequestLog{
		User:      who.Sub,
		Model:     model,
		Endpoint:  meta.endpoint,
		Cluster:   meta.cluster,
		Kind:      kind,
		PromptTok: promptTok,
		OutputTok: outputTok,
		Status:    status,
		CreatedAt: s.clk.Now(),
	})
	if outputTok > 0 {
		s.met.Counter("output_tokens").Add(int64(outputTok))
	}
	s.met.Counter("requests_" + string(kind)).Inc()
}

// handleEmbeddings serves POST /v1/embeddings.
func (s *Server) handleEmbeddings(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.EmbeddingRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	decision, err := s.router.Route(req.Model)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", err.Error())
		return
	}
	res, err := s.client.Embed(r.Context(), decision.Endpoint.ID(), fabric.EmbedRequest{Model: req.Model, Inputs: req.Input})
	meta := routeMeta{endpoint: decision.Endpoint.ID(), cluster: decision.Endpoint.ClusterName(), reason: string(decision.Reason)}
	var promptTok int
	for _, in := range req.Input {
		promptTok += workload.EstimateTokens(in)
	}
	if err != nil {
		s.logRequest(who, req.Model, meta, store.KindEmbedding, promptTok, 0, "error")
		s.writeError(w, http.StatusBadGateway, "api_error", err.Error())
		return
	}
	s.logRequest(who, req.Model, meta, store.KindEmbedding, promptTok, 0, "ok")
	data := make([]openaiapi.EmbeddingData, len(res.Vectors))
	for i, v := range res.Vectors {
		data[i] = openaiapi.EmbeddingData{Object: "embedding", Index: i, Embedding: v}
	}
	s.writeJSON(w, http.StatusOK, openaiapi.EmbeddingResponse{
		Object: "list",
		Model:  req.Model,
		Data:   data,
		Usage:  openaiapi.Usage{PromptTokens: promptTok, TotalTokens: promptTok},
	})
}

// handleModels serves GET /v1/models: the federated model registry.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	names := s.router.Models()
	sort.Strings(names)
	list := openaiapi.ModelList{Object: "list"}
	for _, n := range names {
		entry := openaiapi.Model{ID: n, Object: "model", OwnedBy: "first"}
		if spec, err := s.catalog.Lookup(n); err == nil {
			entry.Kind = spec.Kind.String()
		}
		list.Data = append(list.Data, entry)
	}
	s.writeJSON(w, http.StatusOK, list)
}

// handleJobs serves GET /jobs (§4.3): scheduler-backed model availability.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	var resp openaiapi.JobsResponse
	names := s.router.Models()
	sort.Strings(names)
	for _, model := range names {
		for _, ep := range s.router.Endpoints(model) {
			if d, ok := ep.Deployment(model); ok {
				st := d.Status()
				resp.Models = append(resp.Models, openaiapi.ModelJobStatus{
					Model: st.Model, Endpoint: st.Endpoint, Cluster: st.Cluster,
					State: st.State, Running: st.Running, Starting: st.Starting, Queued: st.Queued,
				})
			} else {
				resp.Models = append(resp.Models, openaiapi.ModelJobStatus{
					Model: model, Endpoint: ep.ID(), Cluster: ep.ClusterName(), State: "cold",
				})
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCreateBatch serves POST /v1/batches (§4.4).
func (s *Server) handleCreateBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	if s.batches == nil {
		s.writeError(w, http.StatusNotImplemented, "api_error", "batch mode not configured")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req openaiapi.CreateBatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "malformed JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", "model is required")
		return
	}
	if err := s.policy.Authorize(who, req.Model); err != nil {
		s.writeError(w, http.StatusForbidden, "permission_error", err.Error())
		return
	}
	decision, err := s.router.Route(req.Model)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", err.Error())
		return
	}
	id, err := s.batches.Submit(who.Sub, req.Model, req.InputLines, decision.Endpoint)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	b, _ := s.st.GetBatch(id)
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

func batchToObject(b store.Batch) openaiapi.BatchObject {
	return openaiapi.BatchObject{
		ID:           b.ID,
		Object:       "batch",
		Model:        b.Model,
		Status:       string(b.State),
		Total:        b.Total,
		Completed:    b.Completed,
		OutputTokens: b.OutputTokens,
		CreatedAt:    b.CreatedAt.Unix(),
		Error:        b.Error,
	}
}

// handleListBatches serves GET /v1/batches.
func (s *Server) handleListBatches(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	batches := s.st.ListBatches(who.Sub)
	out := struct {
		Object string                  `json:"object"`
		Data   []openaiapi.BatchObject `json:"data"`
	}{Object: "list"}
	for _, b := range batches {
		out.Data = append(out.Data, batchToObject(b))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleGetBatch serves GET /v1/batches/{id}.
func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || (b.User != who.Sub && b.User != "") {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

// handleBatchResults serves GET /v1/batches/{id}/results as JSONL.
func (s *Server) handleBatchResults(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || b.User != who.Sub {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	lines, ok := s.batches.Results(id)
	if !ok {
		s.writeError(w, http.StatusConflict, "invalid_request_error", "batch not completed")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, line := range lines {
		_ = enc.Encode(line)
	}
}

// handleCancelBatch serves POST /v1/batches/{id}/cancel.
func (s *Server) handleCancelBatch(w http.ResponseWriter, r *http.Request, who auth.TokenInfo) {
	id := r.PathValue("id")
	b, ok := s.st.GetBatch(id)
	if !ok || b.User != who.Sub {
		s.writeError(w, http.StatusNotFound, "invalid_request_error", "no such batch")
		return
	}
	s.batches.Cancel(id)
	b, _ = s.st.GetBatch(id)
	s.writeJSON(w, http.StatusOK, batchToObject(b))
}

// refreshAuthMetrics copies the token cache's internal stats into registry
// gauges so the dashboard can show herd suppression (singleflight
// coalescing) and cache population under storms. Pull-on-read keeps the
// cache's hot Introspect path free of registry traffic.
func (s *Server) refreshAuthMetrics() {
	hits, misses := s.tokens.Stats()
	s.met.Gauge("auth_cache_hits").Set(hits)
	s.met.Gauge("auth_cache_misses").Set(misses)
	s.met.Gauge("auth_cache_coalesced").Set(s.tokens.Coalesced())
	s.met.Gauge("auth_cache_entries").Set(int64(s.tokens.Len()))
}

// handleMetrics serves GET /metrics (Prometheus-style text).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshAuthMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.met.Expose())
}

// Dashboard is the §3.1.1 web dashboard's JSON document.
type Dashboard struct {
	GeneratedAt time.Time                  `json:"generated_at"`
	Totals      store.Totals               `json:"totals"`
	Metrics     metrics.RegistrySnapshot   `json:"metrics"`
	Models      []openaiapi.ModelJobStatus `json:"models"`
}

// handleDashboard serves GET /dashboard.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	s.refreshAuthMetrics()
	d := Dashboard{
		GeneratedAt: s.clk.Now(),
		Totals:      s.st.Totals(),
		Metrics:     s.met.Snapshot(),
	}
	names := s.router.Models()
	sort.Strings(names)
	for _, model := range names {
		for _, ep := range s.router.Endpoints(model) {
			if dpl, ok := ep.Deployment(model); ok {
				st := dpl.Status()
				d.Models = append(d.Models, openaiapi.ModelJobStatus{
					Model: st.Model, Endpoint: st.Endpoint, Cluster: st.Cluster,
					State: st.State, Running: st.Running, Starting: st.Starting, Queued: st.Queued,
				})
			}
		}
	}
	s.writeJSON(w, http.StatusOK, d)
}
