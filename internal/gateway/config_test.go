package gateway

import "testing"

func TestSyncWorkerModelUsesSmallPool(t *testing.T) {
	cfg := Config{WorkerModel: WorkerSyncLegacy}
	cfg.applyDefaults()
	if cfg.SyncWorkers != 9 {
		t.Errorf("sync workers = %d, want 9 (the paper's pre-Opt.3 pool)", cfg.SyncWorkers)
	}
	async := Config{}
	async.applyDefaults()
	if async.InFlightLimit != 428 {
		t.Errorf("async window = %d, want 428 (Gunicorn cpu×2+1 × 4 threads)", async.InFlightLimit)
	}
}
