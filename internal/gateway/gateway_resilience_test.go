package gateway_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
)

// twoClusterFixture boots a two-cluster federation (polaris first in
// registry order, then sophia) for failover tests.
func twoClusterFixture(t *testing.T, cfg gateway.Config) (*core.System, string) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Clock: clock.NewScaled(20000),
		Clusters: []core.ClusterSpec{
			{Name: "polaris", Nodes: 2, GPUsPerNode: 8},
			{Name: "sophia", Nodes: 2, GPUsPerNode: 8},
		},
		Deployments: []core.DeploymentSpec{
			{Model: perfmodel.Llama8B, Clusters: []string{"polaris", "sophia"},
				Config: fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1}},
		},
		Gateway: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.RegisterUser("u1", "u1@anl.gov"); err != nil {
		t.Fatal(err)
	}
	grant, err := sys.Login("u1")
	if err != nil {
		t.Fatal(err)
	}
	return sys, grant.AccessToken
}

// fakeInfer fabricates an FnInfer handler returning canned text.
func fakeInfer(text string) fabric.Handler {
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var req fabric.InferRequest
		if err := fabric.UnmarshalPayload(payload, &req); err != nil {
			return nil, err
		}
		return fabric.MarshalPayload(fabric.InferResult{
			Model: req.Model, Text: text, PromptTok: req.PromptTok, OutputTok: req.OutputTok,
		}), nil
	}
}

const chatBody = `{"model":"meta-llama/Meta-Llama-3.1-8B-Instruct","messages":[{"role":"user","content":"hi"}],"max_tokens":4}`

func counterValue(sys *core.System, name string) int64 {
	return sys.Metrics.Snapshot().Counters[name]
}

// TestGatewayFailoverToNextCluster: the first-priority endpoint fails every
// request; with a retry budget the gateway re-routes the attempt to the
// other cluster and the client sees success.
func TestGatewayFailoverToNextCluster(t *testing.T) {
	sys, token := twoClusterFixture(t, gateway.Config{
		Retry: resilience.Policy{MaxAttempts: 2},
	})
	sys.Endpoints["ep-polaris"].RegisterFunction(fabric.FnInfer, func(ctx context.Context, payload []byte) ([]byte, error) {
		return nil, fabric.ErrEndpointShutdown
	})
	sys.Endpoints["ep-sophia"].RegisterFunction(fabric.FnInfer, fakeInfer("from sophia"))

	rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, chatBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp openaiapi.ChatCompletionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != "from sophia" {
		t.Errorf("content = %q, want the failover cluster's answer", resp.Choices[0].Message.Content)
	}
	if got := counterValue(sys, "failover_success"); got != 1 {
		t.Errorf("failover_success = %d, want 1", got)
	}
}

// TestGatewayAllOpenSheds: with breakers enabled and every endpoint failing,
// sustained failures trip all circuits and the gateway sheds with 503 +
// Retry-After instead of hammering dead endpoints.
func TestGatewayAllOpenSheds(t *testing.T) {
	// Logical breaker clock: each call advances one second, making trip
	// and probe timing deterministic.
	var tick atomic.Int64
	logical := func() time.Time {
		return time.Unix(1000+tick.Load(), 0)
	}
	sys, token := twoClusterFixture(t, gateway.Config{
		Retry: resilience.Policy{MaxAttempts: 2},
		Breaker: resilience.BreakerConfig{
			Window: time.Hour, MinSamples: 2, FailureRate: 0.5, OpenFor: 30 * time.Second,
		},
		BreakerClock: logical,
	})
	fail := func(ctx context.Context, payload []byte) ([]byte, error) {
		return nil, fabric.ErrEndpointShutdown
	}
	sys.Endpoints["ep-polaris"].RegisterFunction(fabric.FnInfer, fail)
	sys.Endpoints["ep-sophia"].RegisterFunction(fabric.FnInfer, fail)

	// Drive failures until both breakers open (2 samples each suffice; the
	// failover inside one request feeds both endpoints).
	sawShed := false
	var shedRec recorder
	for i := 0; i < 8 && !sawShed; i++ {
		tick.Add(1)
		rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, chatBody)
		switch rec.Code {
		case http.StatusBadGateway:
		case http.StatusServiceUnavailable:
			sawShed = true
			shedRec = recorder{code: rec.Code, retryAfter: rec.Header().Get("Retry-After"), body: rec.Body.String()}
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if !sawShed {
		t.Fatal("breakers never shed load")
	}
	if shedRec.retryAfter == "" {
		t.Errorf("503 missing Retry-After header: %+v", shedRec)
	}
	var envelope openaiapi.ErrorResponse
	if err := json.Unmarshal([]byte(shedRec.body), &envelope); err != nil || envelope.Error.Type != "overloaded_error" {
		t.Errorf("shed envelope = %s", shedRec.body)
	}
	if got := counterValue(sys, "load_shed"); got < 1 {
		t.Errorf("load_shed = %d, want >= 1", got)
	}
	if sys.Gateway.Breakers() == nil || sys.Gateway.Breakers().Trips() < 2 {
		t.Errorf("trips = %v, want both endpoints tripped", sys.Gateway.Breakers().Trips())
	}

	// /metrics exposes the breaker gauges.
	mrec := doRaw(t, sys, "GET", "/metrics", "", "")
	if body := mrec.Body.String(); !containsAll(body, "breaker_open", "breaker_trips", "auth_cache_invalidations") {
		t.Errorf("metrics missing resilience gauges:\n%s", body)
	}

	// After OpenFor, a probe is admitted again (the endpoint still fails,
	// so the client sees 502 — but no longer a shed).
	tick.Add(40)
	rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, chatBody)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("post-expiry status = %d, want 502 via half-open probe", rec.Code)
	}
}

type recorder struct {
	code       int
	retryAfter string
	body       string
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

// TestGatewayEndpointUnauthorizedRecheck: an endpoint-side 401 after a
// gateway cache hit invalidates the cached introspection, rechecks once,
// and — the token still being valid — replays against the same endpoint
// without consuming the failover budget (zero-value Retry here).
func TestGatewayEndpointUnauthorizedRecheck(t *testing.T) {
	sys, token := gatewayFixture(t, gateway.Config{})
	var calls atomic.Int64
	sys.Endpoints["ep-sophia"].RegisterFunction(fabric.FnInfer, func(ctx context.Context, payload []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, fabric.ErrUnauthorized
		}
		return fakeInfer("after recheck")(ctx, payload)
	})

	// Prime the gateway token cache.
	if rec := doRaw(t, sys, "GET", "/v1/models", token, ""); rec.Code != 200 {
		t.Fatalf("prime: %d", rec.Code)
	}
	rec := doRaw(t, sys, "POST", "/v1/chat/completions", token, chatBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp openaiapi.ChatCompletionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != "after recheck" {
		t.Errorf("content = %q", resp.Choices[0].Message.Content)
	}
	if got := counterValue(sys, "auth_rechecks"); got != 1 {
		t.Errorf("auth_rechecks = %d, want 1", got)
	}
	if calls.Load() != 2 {
		t.Errorf("endpoint calls = %d, want 2 (reject + replay)", calls.Load())
	}

	// A second endpoint 401 inside the recheck cooldown surfaces as 401 to
	// the client (bounded: no recheck storm).
	sys.Endpoints["ep-sophia"].RegisterFunction(fabric.FnInfer, func(ctx context.Context, payload []byte) ([]byte, error) {
		return nil, fabric.ErrUnauthorized
	})
	rec = doRaw(t, sys, "POST", "/v1/chat/completions", token, chatBody)
	if rec.Code != http.StatusUnauthorized {
		t.Errorf("persistent endpoint 401: status = %d, want 401", rec.Code)
	}
}
