package gateway

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// BenchmarkGatewayFrontend measures the admission hot path — limiter check
// plus response-cache hit — under parallel load. Run with -cpu 1,4,8: the
// sharded front-end scales with cores while the single-lock arm (shards=1,
// today's historical behaviour) stays flat or degrades as every core
// serializes on one mutex.
func BenchmarkGatewayFrontend(b *testing.B) {
	// Fixed shard counts (not GOMAXPROCS-derived) so the sub-benchmark set
	// is identical whatever -cpu list the run uses.
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := Config{
				CacheTTL:       time.Hour,
				UserRatePerSec: 1e12, // refill outruns any benchmark loop
				Shards:         shards,
			}
			cfg.applyDefaults()
			cfg.Shards = shards // pin exactly, applyDefaults only rounds up
			fe := newFrontend(cfg, clock.NewReal())

			const nUsers = 1024
			subs := make([]string, nUsers)
			keys := make([]respKey, nUsers)
			resp := []byte(`{"object":"chat.completion","cached":true}`)
			for i := range subs {
				subs[i] = "user-" + strconv.Itoa(i)
				keys[i] = cacheKey(subs[i], []byte("the shared prompt"))
				fe.cachePut(keys[i], resp)
			}

			var lane atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine walks the user set from its own offset so
				// goroutines collide on shards, not on one user entry.
				i := int(lane.Add(1)) * 127 % nUsers
				for pb.Next() {
					i = (i + 1) % nUsers
					if !fe.allowUser(subs[i]) {
						b.Error("limiter rejected under infinite refill")
						return
					}
					if _, ok := fe.cacheGet(keys[i]); !ok {
						b.Error("cache miss on warm key")
						return
					}
				}
			})
		})
	}
}
