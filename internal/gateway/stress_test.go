package gateway_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/perfmodel"
)

// stressFixture boots a testbed and logs in n distinct users.
func stressFixture(t *testing.T, cfg gateway.Config, clockScale int64, n int) (*core.System, []string) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Clock: clock.NewScaled(clockScale),
		Clusters: []core.ClusterSpec{
			{Name: "sophia", Nodes: 4, GPUsPerNode: 8},
		},
		Deployments: []core.DeploymentSpec{
			{Model: perfmodel.Llama8B, Clusters: []string{"sophia"},
				Config: fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1}},
		},
		Gateway: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	tokens := make([]string, n)
	for i := range tokens {
		sub := fmt.Sprintf("stress-u%d", i)
		if err := sys.RegisterUser(sub, sub+"@anl.gov"); err != nil {
			t.Fatal(err)
		}
		grant, err := sys.Login(sub)
		if err != nil {
			t.Fatal(err)
		}
		tokens[i] = grant.AccessToken
	}
	return sys, tokens
}

// TestGatewayParallelStress fires authenticated requests from parallel
// goroutines across front-end shards and asserts the invariants the sharding
// must preserve: cache hits still hit, rate limiting still rejects, the
// overload window still 503s, and response IDs stay process-unique. Run
// under `make race` this is the front-end's data-race gate.
func TestGatewayParallelStress(t *testing.T) {
	t.Run("cache-hits-and-unique-ids", func(t *testing.T) {
		const users, perUser = 12, 14
		sys, tokens := stressFixture(t, gateway.Config{
			CacheTTL:       time.Hour,
			UserRatePerSec: 1000, // exercised on every request, never rejects
			Shards:         8,
		}, 20000, users)

		type result struct {
			code   int
			id     string
			cached bool
		}
		results := make([][]result, users)
		var wg sync.WaitGroup
		wg.Add(users)
		for u := 0; u < users; u++ {
			go func(u int) {
				defer wg.Done()
				shared := `{"model":"` + perfmodel.Llama8B + `","messages":[{"role":"user","content":"storm question"}],"max_tokens":4}`
				out := make([]result, 0, perUser)
				for i := 0; i < perUser; i++ {
					body := shared
					if i%2 == 1 { // odd iterations: unique body → unique response ID
						body = fmt.Sprintf(`{"model":"%s","messages":[{"role":"user","content":"unique %d-%d"}],"max_tokens":4}`, perfmodel.Llama8B, u, i)
					}
					rec := doRaw(t, sys, "POST", "/v1/chat/completions", tokens[u], body)
					r := result{code: rec.Code, cached: rec.Header().Get("X-First-Cache") == "hit"}
					if rec.Code == http.StatusOK {
						var resp struct {
							ID string `json:"id"`
						}
						if err := json.Unmarshal(rec.Body.Bytes(), &resp); err == nil {
							r.id = resp.ID
						}
					}
					out = append(out, r)
				}
				results[u] = out
			}(u)
		}
		wg.Wait()

		ids := make(map[string]int)
		var hits int
		for u, out := range results {
			for i, r := range out {
				if r.code != http.StatusOK {
					t.Errorf("user %d req %d: code %d, want 200", u, i, r.code)
				}
				if r.cached {
					hits++
					continue // a cache hit replays a stored body: same ID by design
				}
				if r.id == "" {
					t.Errorf("user %d req %d: 200 without an id", u, i)
					continue
				}
				ids[r.id]++
			}
		}
		for id, n := range ids {
			if n > 1 {
				t.Errorf("response ID %q issued %d times", id, n)
			}
		}
		// Each user's shared body repeats sequentially after its first
		// completion; the cache key is user-scoped, so hits must show up.
		if hits == 0 {
			t.Error("no cache hits across the parallel run")
		}
		if got := sys.Gateway.Metrics().Counter("cache_hits").Value(); got < int64(hits) {
			t.Errorf("cache_hits counter %d < observed hits %d", got, hits)
		}
	})

	t.Run("rate-limit-rejections", func(t *testing.T) {
		const users, perUser = 8, 10
		sys, tokens := stressFixture(t, gateway.Config{
			UserRatePerSec: 0.0001, // refill is negligible: burst then reject
			UserBurst:      1,
			Shards:         8,
		}, 20000, users)
		limited := make([]int, users)
		var wg sync.WaitGroup
		wg.Add(users)
		for u := 0; u < users; u++ {
			go func(u int) {
				defer wg.Done()
				for i := 0; i < perUser; i++ {
					rec := doRaw(t, sys, "GET", "/v1/models", tokens[u], "")
					switch rec.Code {
					case http.StatusOK:
					case http.StatusTooManyRequests:
						limited[u]++
					default:
						t.Errorf("user %d: code %d", u, rec.Code)
					}
				}
			}(u)
		}
		wg.Wait()
		for u, n := range limited {
			if n < perUser/2 {
				t.Errorf("user %d: %d/%d rate-limited, want ≥ %d (burst 1)", u, n, perUser, perUser/2)
			}
		}
		if sys.Gateway.Metrics().Counter("rate_limited").Value() == 0 {
			t.Error("rate_limited counter never incremented")
		}
	})

	t.Run("overload-503", func(t *testing.T) {
		const workers, perWorker = 16, 6
		// Scale 1000 with 2 s of virtual per-request overhead = ~2 ms of
		// wall time holding one of the two in-flight slots.
		sys, tokens := stressFixture(t, gateway.Config{
			InFlightLimit:      2,
			ProcessingOverhead: 2 * time.Second,
			Shards:             4,
		}, 1000, workers)
		var mu sync.Mutex
		var overloaded, ok int
		var wg sync.WaitGroup
		wg.Add(workers)
		for u := 0; u < workers; u++ {
			go func(u int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					rec := doRaw(t, sys, "GET", "/v1/models", tokens[u], "")
					mu.Lock()
					switch rec.Code {
					case http.StatusOK:
						ok++
					case http.StatusServiceUnavailable:
						overloaded++
					default:
						t.Errorf("user %d: code %d, want 200 or 503", u, rec.Code)
					}
					mu.Unlock()
				}
			}(u)
		}
		wg.Wait()
		if ok == 0 {
			t.Error("no request made it through the overload window")
		}
		if overloaded == 0 {
			t.Error("no 503 with a 2-slot window under 16 parallel clients")
		}
		if got := sys.Gateway.Metrics().Counter("overloaded").Value(); got != int64(overloaded) {
			t.Errorf("overloaded counter %d, observed %d", got, overloaded)
		}
	})
}

// TestShardsOneReproducesSingleLockBehaviour pins the compatibility knob:
// with Shards=1 the gateway behaves exactly like the historical single-lock
// front-end on the same request sequence (cache hit on repeat, limiter
// burst accounting).
func TestShardsOneReproducesSingleLockBehaviour(t *testing.T) {
	sys, tokens := stressFixture(t, gateway.Config{
		CacheTTL:       time.Hour,
		UserRatePerSec: 0.0001,
		UserBurst:      3,
		Shards:         1,
	}, 20000, 1)
	body := `{"model":"` + perfmodel.Llama8B + `","messages":[{"role":"user","content":"single lock"}],"max_tokens":4}`
	codes := make([]int, 0, 6)
	var hits int
	for i := 0; i < 6; i++ {
		rec := doRaw(t, sys, "POST", "/v1/chat/completions", tokens[0], body)
		codes = append(codes, rec.Code)
		if rec.Header().Get("X-First-Cache") == "hit" {
			hits++
		}
	}
	// Burst 3: three admitted (first computes, next two replay from cache),
	// then rejections.
	want := []int{200, 200, 200, 429, 429, 429}
	for i, c := range codes {
		if c != want[i] {
			t.Errorf("request %d: code %d, want %d (got %v)", i, c, want[i], codes)
			break
		}
	}
	if hits != 2 {
		t.Errorf("cache hits = %d, want 2", hits)
	}
}
