// Package scheduler implements a PBS-like batch scheduler for a cluster:
// jobs queue FIFO (with optional backfill), acquire GPU allocations, pass
// through a Starting (prologue) phase, run until completed, cancelled, or
// walltime-expired, and are observable through a qstat-style view that backs
// the gateway's /jobs endpoint (§4.3: models "running", "starting",
// "queued").
package scheduler

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
)

// State is a job lifecycle state.
type State int

const (
	Queued State = iota
	Starting
	Running
	Completed
	Cancelled
	TimedOut
	Failed
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Starting:
		return "starting"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	case TimedOut:
		return "timedout"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= Completed }

// JobSpec describes a resource request.
type JobSpec struct {
	Name     string
	User     string
	GPUs     int
	Walltime time.Duration // 0 = unlimited
	// OnRunning fires (on a scheduler goroutine) when the job enters
	// Running with its allocation live.
	OnRunning func(*Job)
	// OnEnd fires once when the job reaches a terminal state.
	OnEnd func(*Job, State)
}

// Job is a scheduled unit of work.
type Job struct {
	ID   int64
	Spec JobSpec

	mu          sync.Mutex
	state       State
	submittedAt time.Time
	startedAt   time.Time
	endedAt     time.Time
	alloc       *cluster.Allocation
	gen         uint64 // guards stale timers after requeue/cancel
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Allocation returns the job's allocation (nil unless Starting/Running).
func (j *Job) Allocation() *cluster.Allocation {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.alloc
}

// QueueWait returns time spent queued (zero until started).
func (j *Job) QueueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.startedAt.IsZero() {
		return 0
	}
	return j.startedAt.Sub(j.submittedAt)
}

// View is a qstat row.
type View struct {
	ID        int64         `json:"id"`
	Name      string        `json:"name"`
	User      string        `json:"user"`
	GPUs      int           `json:"gpus"`
	State     string        `json:"state"`
	QueueWait time.Duration `json:"queue_wait"`
	Runtime   time.Duration `json:"runtime"`
}

// Config tunes the scheduler.
type Config struct {
	// Prologue is the node-acquisition/boot time between allocation and
	// Running (job launch, container start, environment setup).
	Prologue time.Duration
	// Backfill lets later queued jobs start when the head job cannot fit
	// but they can (conservative backfill without reservations).
	Backfill bool
	// Timer, when set, schedules the scheduler's delayed transitions
	// (prologue completion, walltime expiry) instead of the default
	// goroutine-sleeping-on-the-clock. The DES harness points it at the
	// event kernel so the real scheduler lifecycle runs deterministically
	// on virtual time; live deployments leave it nil.
	Timer func(d time.Duration, fn func())
}

// Scheduler binds a job queue to a cluster.
type Scheduler struct {
	clk clock.Clock
	cl  *cluster.Cluster
	cfg Config

	mu      sync.Mutex
	nextID  int64
	queue   []*Job
	active  map[int64]*Job // Starting or Running
	history []*Job
	closed  bool
}

// New returns a scheduler for the cluster.
func New(cl *cluster.Cluster, clk clock.Clock, cfg Config) *Scheduler {
	if cfg.Prologue <= 0 {
		cfg.Prologue = 30 * time.Second
	}
	return &Scheduler{clk: clk, cl: cl, cfg: cfg, active: make(map[int64]*Job)}
}

// Cluster returns the underlying cluster.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cl }

// Submit enqueues a job and immediately attempts placement.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if spec.GPUs <= 0 {
		return nil, fmt.Errorf("scheduler: job %q requests %d GPUs", spec.Name, spec.GPUs)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("scheduler: closed")
	}
	s.nextID++
	job := &Job{ID: s.nextID, Spec: spec, state: Queued, submittedAt: s.clk.Now()}
	s.queue = append(s.queue, job)
	s.mu.Unlock()
	s.trySchedule()
	return job, nil
}

// Cancel removes a queued job or terminates an active one.
func (s *Scheduler) Cancel(id int64) bool {
	return s.finish(id, Cancelled)
}

// Complete marks a running job as voluntarily finished (endpoint released
// the node, batch job drained).
func (s *Scheduler) Complete(id int64) bool {
	return s.finish(id, Completed)
}

// Fail marks a running job as failed (serving process crash); the fabric's
// fault-tolerance path resubmits.
func (s *Scheduler) Fail(id int64) bool {
	return s.finish(id, Failed)
}

func (s *Scheduler) finish(id int64, terminal State) bool {
	s.mu.Lock()
	// Queued?
	for i, j := range s.queue {
		if j.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.endLocked(j, terminal)
			s.mu.Unlock()
			s.notifyEnd(j, terminal)
			return true
		}
	}
	j, ok := s.active[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.active, id)
	alloc := j.releaseForEnd(terminal)
	s.history = append(s.history, j)
	s.mu.Unlock()
	if alloc != nil {
		s.cl.Release(alloc)
	}
	s.notifyEnd(j, terminal)
	s.trySchedule()
	return true
}

func (s *Scheduler) endLocked(j *Job, terminal State) {
	j.mu.Lock()
	j.state = terminal
	j.endedAt = s.clk.Now()
	j.gen++
	j.mu.Unlock()
	s.history = append(s.history, j)
}

func (j *Job) releaseForEnd(terminal State) *cluster.Allocation {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = terminal
	j.gen++
	alloc := j.alloc
	j.alloc = nil
	return alloc
}

func (s *Scheduler) notifyEnd(j *Job, terminal State) {
	if j.Spec.OnEnd != nil {
		j.Spec.OnEnd(j, terminal)
	}
}

// trySchedule places queued jobs in order; with backfill enabled, jobs that
// fit may jump a blocked head.
func (s *Scheduler) trySchedule() {
	for {
		s.mu.Lock()
		if s.closed || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		var job *Job
		var idx int
		for i, cand := range s.queue {
			alloc, err := s.cl.Allocate(cand.Spec.GPUs)
			if err == nil {
				job = cand
				idx = i
				job.mu.Lock()
				job.alloc = alloc
				job.state = Starting
				job.startedAt = s.clk.Now()
				gen := job.gen
				job.mu.Unlock()
				s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
				s.active[job.ID] = job
				s.mu.Unlock()
				s.launch(job, gen)
				break
			}
			if !s.cfg.Backfill {
				s.mu.Unlock()
				return
			}
		}
		if job == nil {
			s.mu.Unlock()
			return
		}
	}
}

// launch runs the Starting→Running transition and arms the walltime timer.
func (s *Scheduler) launch(job *Job, gen uint64) {
	s.after(s.cfg.Prologue, func() {
		job.mu.Lock()
		if job.gen != gen || job.state != Starting {
			job.mu.Unlock()
			return
		}
		job.state = Running
		job.mu.Unlock()
		if job.Spec.OnRunning != nil {
			job.Spec.OnRunning(job)
		}
		if job.Spec.Walltime > 0 {
			s.after(job.Spec.Walltime, func() {
				job.mu.Lock()
				stale := job.gen != gen || job.state != Running
				job.mu.Unlock()
				if !stale {
					s.finish(job.ID, TimedOut)
				}
			})
		}
	})
}

// after defers fn by d through the configured Timer (deterministic,
// DES-driven) or, by default, a goroutine sleeping on the clock.
func (s *Scheduler) after(d time.Duration, fn func()) {
	if s.cfg.Timer != nil {
		s.cfg.Timer(d, fn)
		return
	}
	//firstlint:allow det default wall-clock timer for live mode; DES harnesses inject cfg.Timer and never reach this goroutine
	go func() {
		s.clk.Sleep(d)
		fn()
	}()
}

// Qstat returns all non-terminal jobs plus recent history, newest last.
func (s *Scheduler) Qstat() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	var views []View
	add := func(j *Job) {
		j.mu.Lock()
		v := View{ID: j.ID, Name: j.Spec.Name, User: j.Spec.User, GPUs: j.Spec.GPUs, State: j.state.String()}
		if !j.startedAt.IsZero() {
			v.QueueWait = j.startedAt.Sub(j.submittedAt)
			if j.endedAt.IsZero() {
				v.Runtime = now.Sub(j.startedAt)
			} else {
				v.Runtime = j.endedAt.Sub(j.startedAt)
			}
		} else if j.state == Queued {
			v.QueueWait = now.Sub(j.submittedAt)
		}
		j.mu.Unlock()
		views = append(views, v)
	}
	for _, j := range s.queue {
		add(j)
	}
	ids := make([]int64, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		add(s.active[id])
	}
	return views
}

// QueuedCount returns the number of queued jobs (federation input).
func (s *Scheduler) QueuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// ActiveCount returns Starting+Running jobs.
func (s *Scheduler) ActiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// Close cancels all queued jobs and stops accepting new ones; active jobs
// are terminated and their allocations released.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	queued := s.queue
	s.queue = nil
	var activeIDs []int64
	for id := range s.active {
		activeIDs = append(activeIDs, id)
	}
	// Terminate in submission (ID) order: finish fires completion
	// callbacks, and map order must not leak into their sequence.
	sort.Slice(activeIDs, func(i, j int) bool { return activeIDs[i] < activeIDs[j] })
	s.mu.Unlock()
	for _, j := range queued {
		s.endLockedPublic(j)
	}
	for _, id := range activeIDs {
		s.finish(id, Cancelled)
	}
}

func (s *Scheduler) endLockedPublic(j *Job) {
	s.mu.Lock()
	s.endLocked(j, Cancelled)
	s.mu.Unlock()
	s.notifyEnd(j, Cancelled)
}
