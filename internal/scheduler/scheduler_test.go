package scheduler

import (
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/sim"
)

func newTestScheduler(t *testing.T, nodes, gpus int, cfg Config) (*Scheduler, *cluster.Cluster) {
	t.Helper()
	cl := cluster.New("test", nodes, gpus, perfmodel.A100_40)
	if cfg.Prologue == 0 {
		cfg.Prologue = 10 * time.Second
	}
	s := New(cl, clock.NewScaled(20000), cfg)
	t.Cleanup(s.Close)
	return s, cl
}

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %v, want %v", j.ID, j.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	s, cl := newTestScheduler(t, 2, 8, Config{})
	var mu sync.Mutex
	var events []string
	job, err := s.Submit(JobSpec{
		Name: "serve", User: "alice", GPUs: 8,
		OnRunning: func(j *Job) { mu.Lock(); events = append(events, "running"); mu.Unlock() },
		OnEnd:     func(j *Job, st State) { mu.Lock(); events = append(events, "end:"+st.String()); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, Running)
	if job.Allocation() == nil || job.Allocation().GPUs() != 8 {
		t.Error("running job should hold its allocation")
	}
	if !s.Complete(job.ID) {
		t.Error("Complete failed")
	}
	waitState(t, job, Completed)
	if cl.Status().FreeGPUs != 16 {
		t.Errorf("GPUs not released: %d free", cl.Status().FreeGPUs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != "running" || events[1] != "end:completed" {
		t.Errorf("events = %v", events)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	j1, _ := s.Submit(JobSpec{Name: "a", GPUs: 8})
	j2, _ := s.Submit(JobSpec{Name: "b", GPUs: 8})
	waitState(t, j1, Running)
	if j2.State() != Queued {
		t.Fatalf("j2 = %v, want queued", j2.State())
	}
	if s.QueuedCount() != 1 {
		t.Errorf("queued = %d", s.QueuedCount())
	}
	s.Complete(j1.ID)
	waitState(t, j2, Running)
	if j2.QueueWait() <= 0 {
		t.Error("queued job should record queue wait")
	}
}

func TestFIFOWithoutBackfill(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	j1, _ := s.Submit(JobSpec{Name: "big1", GPUs: 8})
	j2, _ := s.Submit(JobSpec{Name: "big2", GPUs: 8}) // blocks the head
	j3, _ := s.Submit(JobSpec{Name: "small", GPUs: 1})
	waitState(t, j1, Running)
	time.Sleep(20 * time.Millisecond)
	if j3.State() != Queued {
		t.Errorf("FIFO scheduler let a small job jump the queue: %v", j3.State())
	}
	_ = j2
}

func TestBackfillLetsSmallJobsRun(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{Backfill: true})
	j1, _ := s.Submit(JobSpec{Name: "big1", GPUs: 6})
	j2, _ := s.Submit(JobSpec{Name: "big2", GPUs: 6}) // cannot fit beside j1
	j3, _ := s.Submit(JobSpec{Name: "small", GPUs: 2})
	waitState(t, j1, Running)
	waitState(t, j3, Running) // backfilled around j2
	if j2.State() != Queued {
		t.Errorf("j2 = %v, want still queued", j2.State())
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	j1, _ := s.Submit(JobSpec{Name: "a", GPUs: 8})
	j2, _ := s.Submit(JobSpec{Name: "b", GPUs: 8})
	waitState(t, j1, Running)
	if !s.Cancel(j2.ID) {
		t.Fatal("cancel queued failed")
	}
	if j2.State() != Cancelled {
		t.Errorf("j2 = %v", j2.State())
	}
	if s.Cancel(99999) {
		t.Error("cancelling unknown job should fail")
	}
}

func TestCancelRunningReleasesNodes(t *testing.T) {
	s, cl := newTestScheduler(t, 1, 8, Config{})
	j, _ := s.Submit(JobSpec{Name: "a", GPUs: 8})
	waitState(t, j, Running)
	s.Cancel(j.ID)
	waitState(t, j, Cancelled)
	if cl.Status().FreeGPUs != 8 {
		t.Errorf("GPUs leaked: %d free", cl.Status().FreeGPUs)
	}
}

func TestWalltimeTimeout(t *testing.T) {
	s, cl := newTestScheduler(t, 1, 8, Config{})
	j, _ := s.Submit(JobSpec{Name: "w", GPUs: 4, Walltime: 30 * time.Second})
	waitState(t, j, Running)
	waitState(t, j, TimedOut)
	if cl.Status().FreeGPUs != 8 {
		t.Errorf("GPUs leaked after walltime: %d", cl.Status().FreeGPUs)
	}
}

func TestFailTriggersOnEnd(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	ended := make(chan State, 1)
	j, _ := s.Submit(JobSpec{
		Name: "f", GPUs: 4,
		OnEnd: func(_ *Job, st State) { ended <- st },
	})
	waitState(t, j, Running)
	s.Fail(j.ID)
	select {
	case st := <-ended:
		if st != Failed {
			t.Errorf("end state = %v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnEnd never fired")
	}
}

func TestQstatView(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	j1, _ := s.Submit(JobSpec{Name: "run", User: "u1", GPUs: 8})
	s.Submit(JobSpec{Name: "wait", User: "u2", GPUs: 8})
	waitState(t, j1, Running)
	views := s.Qstat()
	if len(views) != 2 {
		t.Fatalf("qstat rows = %d", len(views))
	}
	byName := map[string]View{}
	for _, v := range views {
		byName[v.Name] = v
	}
	if byName["run"].State != "running" {
		t.Errorf("run state = %s", byName["run"].State)
	}
	if byName["wait"].State != "queued" {
		t.Errorf("wait state = %s", byName["wait"].State)
	}
	if byName["run"].Runtime <= 0 {
		t.Error("running job should report runtime")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := newTestScheduler(t, 1, 8, Config{})
	if _, err := s.Submit(JobSpec{Name: "bad", GPUs: 0}); err == nil {
		t.Error("zero-GPU job should be rejected")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	s, cl := newTestScheduler(t, 1, 8, Config{})
	j1, _ := s.Submit(JobSpec{Name: "a", GPUs: 8})
	j2, _ := s.Submit(JobSpec{Name: "b", GPUs: 8})
	waitState(t, j1, Running)
	s.Close()
	if !j1.State().Terminal() || !j2.State().Terminal() {
		t.Errorf("states after close: %v %v", j1.State(), j2.State())
	}
	if cl.Status().FreeGPUs != 8 {
		t.Errorf("GPUs leaked on close: %d", cl.Status().FreeGPUs)
	}
	if _, err := s.Submit(JobSpec{Name: "late", GPUs: 1}); err == nil {
		t.Error("closed scheduler accepted a job")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Queued: "queued", Starting: "starting", Running: "running",
		Completed: "completed", Cancelled: "cancelled", TimedOut: "timedout", Failed: "failed",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
	if Queued.Terminal() || Running.Terminal() {
		t.Error("non-terminal states misreported")
	}
	if !Completed.Terminal() || !Failed.Terminal() {
		t.Error("terminal states misreported")
	}
}

// kernelTestClock mirrors the DES harness's kernel-backed clock: Now reads
// virtual time; the scheduler must never Sleep when a Timer is configured.
type kernelTestClock struct{ k *sim.Kernel }

func (c kernelTestClock) Now() time.Time                  { return time.Unix(0, 0).UTC().Add(c.k.Now()) }
func (c kernelTestClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c kernelTestClock) Sleep(time.Duration)             { panic("Sleep with Timer configured") }
func (c kernelTestClock) After(time.Duration) <-chan time.Time {
	panic("After with Timer configured")
}

// TestDeterministicTimerLifecycle drives the full Queued→Starting→Running→
// TimedOut lifecycle on a DES kernel through Config.Timer: every transition
// lands at an exact virtual time, with no goroutines and no polling.
func TestDeterministicTimerLifecycle(t *testing.T) {
	k := sim.NewKernel()
	cl := cluster.New("des", 1, 8, perfmodel.A100_40)
	s := New(cl, kernelTestClock{k}, Config{
		Prologue: 30 * time.Second,
		Timer:    k.Schedule,
	})
	var runningAt, endAt time.Duration
	var endState State
	job, err := s.Submit(JobSpec{
		Name: "serve", User: "des", GPUs: 8,
		Walltime:  2 * time.Minute,
		OnRunning: func(*Job) { runningAt = k.Now() },
		OnEnd:     func(_ *Job, st State) { endAt, endState = k.Now(), st },
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State() != Starting {
		t.Fatalf("job state after submit = %v, want Starting (placed synchronously)", job.State())
	}
	k.Run(0)
	if runningAt != 30*time.Second {
		t.Errorf("Running at %v, want exactly 30s (prologue)", runningAt)
	}
	if endState != TimedOut || endAt != 150*time.Second {
		t.Errorf("end = %v at %v, want TimedOut at exactly 150s", endState, endAt)
	}
	if job.QueueWait() != 0 {
		t.Errorf("queue wait = %v, want 0", job.QueueWait())
	}
	if cl.Status().FreeGPUs != 8 {
		t.Errorf("GPUs not released after timeout: %d free", cl.Status().FreeGPUs)
	}
}

// TestDeterministicTimerCompleteBeatsWalltime completes a job before its
// walltime on the kernel: the stale walltime timer must not re-finish it.
func TestDeterministicTimerCompleteBeatsWalltime(t *testing.T) {
	k := sim.NewKernel()
	cl := cluster.New("des", 1, 8, perfmodel.A100_40)
	s := New(cl, kernelTestClock{k}, Config{Prologue: 10 * time.Second, Timer: k.Schedule})
	ends := 0
	job, err := s.Submit(JobSpec{
		Name: "serve", GPUs: 4,
		Walltime: time.Minute,
		OnEnd:    func(*Job, State) { ends++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(30*time.Second, func() { s.Complete(job.ID) })
	k.Run(0)
	if job.State() != Completed {
		t.Errorf("state = %v, want Completed", job.State())
	}
	if ends != 1 {
		t.Errorf("OnEnd fired %d times, want once (walltime timer must go stale)", ends)
	}
}
