package lint

import (
	"strings"
	"testing"
)

func TestParseEscapeOutput(t *testing.T) {
	out := strings.Join([]string{
		"# github.com/argonne-first/first/internal/sim",
		"internal/sim/kernel.go:95:9: &Kernel{} escapes to heap",
		"internal/sim/kernel.go:120:2: moved to heap: ev",
		"internal/sim/kernel.go:140:6: can inline (*Kernel).Now",
		"internal/sim/kernel.go:150:20: leaking param: fn",
		"not a diagnostic line",
	}, "\n")
	sites := ParseEscapeOutput([]byte(out))
	if len(sites) != 2 {
		t.Fatalf("want 2 sites, got %d: %+v", len(sites), sites)
	}
	if sites[0].File != "internal/sim/kernel.go" || sites[0].Line != 95 {
		t.Errorf("bad site 0: %+v", sites[0])
	}
	if sites[1].Line != 120 || !strings.Contains(sites[1].Msg, "moved to heap") {
		t.Errorf("bad site 1: %+v", sites[1])
	}
}

func TestCheckEscapes(t *testing.T) {
	pkg := loadSrc(t, `package p

// Hot is a 0-alloc path.
//
//first:hotpath
func Hot() *int {
	x := 1
	//firstlint:allow hotpath documented slow-path escape
	y := 2
	_ = x
	return &y
}

func Cold() *int {
	z := 3
	return &z
}
`)
	sites := []EscapeSite{
		{File: "a.go", Line: 7, Msg: "moved to heap: x"},  // inside Hot, no allow -> finding
		{File: "a.go", Line: 9, Msg: "moved to heap: y"},  // inside Hot, allowed
		{File: "a.go", Line: 15, Msg: "moved to heap: z"}, // outside any hotpath body
	}
	diags := CheckEscapes(pkg.Dir, sites, []*Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %d: %q", len(diags), diagMessages(diags))
	}
	if !strings.Contains(diags[0].Message, "heap escape inside //first:hotpath Hot") ||
		!strings.Contains(diags[0].Message, "moved to heap: x") {
		t.Errorf("bad message: %s", diags[0].Message)
	}
	if diags[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want 7", diags[0].Pos.Line)
	}
	// The consumed allow is used; directive health must stay clean.
	if dd := pkg.Dirs.DirectiveDiags(); len(dd) != 0 {
		t.Errorf("unexpected directive diags: %q", diagMessages(dd))
	}
}
