package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// detPackages are the module-relative package paths whose byte-identical
// replay the differential suites pin. Everything in them must be a pure
// function of the seed and the event schedule.
var detPackages = map[string]bool{
	"internal/sim":        true,
	"internal/desmodel":   true,
	"internal/federation": true,
	"internal/scheduler":  true,
	"internal/cluster":    true,
	"internal/serving":    true,
}

// detExperimentFiles are the internal/experiments files in scope: report
// and BENCH-record assembly, where map-iteration order would leak straight
// into committed artifacts.
var detExperimentFiles = map[string]bool{
	"report.go":    true,
	"benchjson.go": true,
}

// Det flags nondeterminism sources in deterministic packages: wall-clock
// reads (time.Now/Since), global math/rand draws, goroutine launches, and
// map iterations that are not visibly sorted before their results can
// escape into reports or event schedules.
var Det = &Analyzer{
	Name: "det",
	Doc:  "forbid wall-clock reads, global rand, goroutines, and unsorted map ranges in deterministic packages",
	Run:  runDet,
}

func detInScope(path, filename string) bool {
	rel := relPath(path)
	if detPackages[rel] {
		return true
	}
	if rel == "internal/experiments" {
		return detExperimentFiles[filepath.Base(filename)]
	}
	return false
}

func runDet(pass *Pass) {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if !detInScope(pass.Path, filename) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			detFunc(pass, fd)
		}
	}
}

func detFunc(pass *Pass, fd *ast.FuncDecl) {
	// Collect sort calls first: a map range is acceptable when the same
	// function visibly sorts after the iteration begins (keys gathered
	// then sorted, or the filled slice sorted before use).
	var sortPos []int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcObj(pass.Info, call); fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				sortPos = append(sortPos, pass.Fset.Position(call.Pos()).Line)
			}
		}
		return true
	})
	sortedAfter := func(line int) bool {
		for _, l := range sortPos {
			if l >= line {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in deterministic package %s: the DES drives all concurrency through the kernel", relPath(pass.Path))
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if !sortedAfter(line) {
				pass.Reportf(n.Pos(), "map iteration order is random: sort before results can escape into reports or event schedules, or annotate //firstlint:allow det <reason>")
			}
		case *ast.CallExpr:
			fn := funcObj(pass.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if pkgLevelFunc(fn, "time") && (fn.Name() == "Now" || fn.Name() == "Since") {
					pass.Reportf(n.Pos(), "wall-clock time.%s in deterministic package %s: derive time from the kernel or internal/clock", fn.Name(), relPath(pass.Path))
				}
			case "math/rand", "math/rand/v2":
				if pkgLevelFunc(fn, fn.Pkg().Path()) && !seededRandCtor[fn.Name()] {
					pass.Reportf(n.Pos(), "global %s.%s draws from the shared process-wide source: thread a seeded *sim.RNG instead", fn.Pkg().Name(), fn.Name())
				}
			}
		}
		return true
	})
}

// seededRandCtor lists the math/rand package-level functions that build
// explicitly seeded generators (fine for determinism) rather than drawing
// from the global source.
var seededRandCtor = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}
