package lint

import (
	"go/ast"
)

// ClockOnly forbids raw waiting primitives everywhere outside
// internal/clock. A real 1 s sleep is 77 simulated hours at the livefed
// 20000× factor (the PR 6 WithSleep bug class), so every wait must flow
// through the scaled clock where harnesses can compress or inject it.
var ClockOnly = &Analyzer{
	Name: "clockonly",
	Doc:  "forbid time.Sleep/After/AfterFunc/Tick/NewTimer/NewTicker outside internal/clock",
	Run:  runClockOnly,
}

// wallWaiters are the time package functions that block on or schedule
// against the wall clock.
var wallWaiters = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runClockOnly(pass *Pass) {
	if relPath(pass.Path) == "internal/clock" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.Info, call)
			if fn != nil && pkgLevelFunc(fn, "time") && wallWaiters[fn.Name()] {
				pass.Reportf(call.Pos(), "time.%s waits on the raw wall clock: route the wait through internal/clock (clock.Clock, clock.SleepCtx) so scaled harnesses stay in control", fn.Name())
			}
			return true
		})
	}
}
