package lint

import (
	"go/ast"
	"go/token"
)

// HotPath cross-checks //first:hotpath annotations against the package's
// 0-alloc AllocsPerRun pins so the two cannot drift apart:
//
//   - reverse: every function a 0-alloc pin closure calls directly must
//     carry //first:hotpath (removing the annotation from a pinned
//     function is a finding);
//   - forward: every annotated function must be reachable, through the
//     package's static call graph, from some 0-alloc pin closure
//     (annotating a function nothing pins is a finding).
//
// The second half of the contract — the compiler's escape analysis showing
// no heap escapes inside annotated bodies — runs in the driver (see
// escape.go), because it needs `go build -gcflags=-m` output.
//
// Pins are detected syntactically in the package's _test.go files: a
// testing.AllocsPerRun call whose result is compared against literal 0
// (`!= 0` or `> 0`). Pins with a nonzero budget (e.g. `> 1`) bind nothing.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "cross-check //first:hotpath annotations against AllocsPerRun pins",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	// Index the package's compiled (non-test) function declarations by
	// bare name. Methods share the namespace: a pinned name requires the
	// annotation on every same-named declaration, which keeps the check
	// honest without type information for test files.
	decls := make(map[string][]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			}
		}
	}
	annotated := make(map[string]bool)
	for _, ann := range pass.Dirs.Hotpaths() {
		annotated[ann.FuncName] = true
	}

	// Collect the direct callees of every 0-alloc pin closure.
	pinned := make(map[string]token.Pos)
	for _, tf := range pass.TestFiles {
		for _, d := range tf.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanPins(pass, fd, func(callee string, pos token.Pos) {
				if _, exists := pinned[callee]; !exists {
					pinned[callee] = pos
				}
			})
		}
	}

	// Reverse check: pinned functions must be annotated.
	for name := range pinned {
		for _, fd := range decls[name] {
			if !annotated[name] {
				pass.Reportf(fd.Pos(), "%s is pinned 0-alloc by an AllocsPerRun test but lacks //first:hotpath: annotate it so escape analysis guards the pin", name)
			}
		}
	}

	// Forward check: annotated functions must be reachable from a pin.
	reach := reachable(pass, decls, pinned)
	for _, ann := range pass.Dirs.Hotpaths() {
		if len(decls[ann.FuncName]) == 0 {
			// Annotation bound to a test-file function: pins live in
			// tests, hot paths in compiled code.
			pass.Reportf(posOf(pass, ann), "//first:hotpath on %s, which is not a compiled function of this package", ann.FuncName)
			continue
		}
		if !reach[ann.FuncName] {
			pass.Reportf(posOf(pass, ann), "%s is annotated //first:hotpath but no 0-alloc AllocsPerRun pin reaches it: add the pin or drop the annotation", ann.FuncName)
		}
	}
}

// posOf recovers a token.Pos inside the annotated function so Reportf can
// consult allow directives; annotations store resolved positions.
func posOf(pass *Pass, ann HotpathAnn) token.Pos {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == ann.FuncName {
				if pass.Fset.Position(fd.Pos()).Filename == ann.File {
					return fd.Pos()
				}
			}
		}
	}
	for _, f := range pass.TestFiles {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == ann.FuncName {
				return fd.Pos()
			}
		}
	}
	return token.NoPos
}

// reachable closes the pinned-callee set over the package's static call
// graph (bare-name edges between compiled functions), so helpers like the
// kernel's heapPush/heapPop — exercised through Schedule/Run pins — count
// as covered.
func reachable(pass *Pass, decls map[string][]*ast.FuncDecl, pinned map[string]token.Pos) map[string]bool {
	edges := make(map[string][]string)
	for name, fds := range decls {
		seen := make(map[string]bool)
		for _, fd := range fds {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeName(call)
				if callee == "" || seen[callee] {
					return true
				}
				if len(decls[callee]) > 0 {
					seen[callee] = true
					edges[name] = append(edges[name], callee)
				}
				return true
			})
		}
	}
	reach := make(map[string]bool)
	var queue []string
	for name := range pinned {
		if len(decls[name]) > 0 && !reach[name] {
			reach[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, next := range edges[name] {
			if !reach[next] {
				reach[next] = true
				queue = append(queue, next)
			}
		}
	}
	return reach
}

// scanPins finds testing.AllocsPerRun calls inside fd whose result is
// compared against literal 0, resolves the measured closure, and emits the
// closure's direct callee names.
func scanPins(pass *Pass, fd *ast.FuncDecl, emit func(callee string, pos token.Pos)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 || !isAllocsPerRun(call) {
			return true
		}
		if !zeroPinned(fd, call) {
			return true
		}
		for _, callee := range closureCallees(fd, call.Args[1]) {
			emit(callee, call.Pos())
		}
		return true
	})
}

func isAllocsPerRun(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "AllocsPerRun"
	case *ast.Ident:
		return fun.Name == "AllocsPerRun"
	}
	return false
}

// zeroPinned reports whether the AllocsPerRun call's result is compared
// against literal 0 with != or > — the shape every 0-alloc pin in this
// repo uses. The two accepted bindings keep same-named results in one test
// function from cross-talking:
//
//	if x := testing.AllocsPerRun(...); x != 0 {   // checked in that if's condition only
//	x := testing.AllocsPerRun(...); ...; if x != 0 // checked across the function
func zeroPinned(fd *ast.FuncDecl, target *ast.CallExpr) bool {
	// if-scoped binding: compare only inside that statement's condition.
	found, bound := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		asg, ok := ifs.Init.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != target {
			return true
		}
		bound = true
		if id, ok := asg.Lhs[0].(*ast.Ident); ok {
			found = comparesToZero(ifs.Cond, id.Name)
		}
		return true
	})
	if bound {
		return found
	}
	// standalone binding: find the assignment, then any comparison in the
	// function.
	name := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 || asg.Rhs[0] != target {
			return true
		}
		if id, ok := asg.Lhs[0].(*ast.Ident); ok {
			name = id.Name
		}
		return true
	})
	if name == "" {
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if comparesToZero(n, name) {
			found = true
		}
		return true
	})
	return found
}

func comparesToZero(n ast.Node, name string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.GTR) {
			return true
		}
		id, ok := ast.Unparen(bin.X).(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if lit, ok := ast.Unparen(bin.Y).(*ast.BasicLit); ok && lit.Value == "0" {
			found = true
		}
		return true
	})
	return found
}

// closureCallees lists the names directly called by the measured argument:
// a func literal's call sites, a method value like c.Inc, or a local
// variable previously assigned a func literal.
func closureCallees(fd *ast.FuncDecl, arg ast.Expr) []string {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return bodyCallees(arg.Body)
	case *ast.SelectorExpr:
		return []string{arg.Sel.Name}
	case *ast.Ident:
		var body *ast.BlockStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != arg.Name || i >= len(asg.Rhs) {
					continue
				}
				if fl, ok := asg.Rhs[i].(*ast.FuncLit); ok {
					body = fl.Body
				}
			}
			return true
		})
		if body != nil {
			return bodyCallees(body)
		}
	}
	return nil
}

func bodyCallees(body *ast.BlockStmt) []string {
	var out []string
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); name != "" && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
		return true
	})
	return out
}
