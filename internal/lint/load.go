package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, analyzed unit: compiled files type-checked, test
// files parsed, directives scanned.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	Dirs      *Directives
	// Src holds each file's raw bytes, keyed by absolute filename; the
	// directive scanner uses it to decide whether a comment stands alone
	// on its line.
	Src map[string][]byte
}

type listPkg struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates patterns with `go list` from moduleDir and loads each
// package: compiled files are parsed with comments and type-checked against
// the standard library's source importer (fully offline), test files are
// parsed only. One file set and one importer are shared across packages so
// dependency type-checking is paid once per process.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkg, err := loadFiles(fset, imp, lp.Dir, lp.ImportPath, lp.GoFiles, append(lp.TestGoFiles, lp.XTestGoFiles...))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads every .go file in dir as one package under the given
// (possibly synthetic) import path. Fixture runners use it to place test
// packages inside the production scope rules.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles, testFiles []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, name)
		} else {
			goFiles = append(goFiles, name)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return loadFiles(fset, imp, dir, importPath, goFiles, testFiles)
}

func loadFiles(fset *token.FileSet, imp types.Importer, dir, importPath string, goFiles, testFiles []string) (*Package, error) {
	src := make(map[string][]byte)
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			fn := filepath.Join(dir, name)
			b, err := os.ReadFile(fn)
			if err != nil {
				return nil, err
			}
			src[fn] = b
			f, err := parser.ParseFile(fset, fn, b, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(goFiles)
	if err != nil {
		return nil, err
	}
	tfiles, err := parse(testFiles)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}

	pkg := &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		TestFiles: tfiles,
		Pkg:       tpkg,
		Info:      info,
		Src:       src,
	}
	pkg.Dirs = scanDirectives(pkg)
	return pkg, nil
}
