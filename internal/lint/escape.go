package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The driver half of the hotpath contract: parse the compiler's escape
// analysis (`go build -gcflags=<module>/...=-m`) and fail when a heap
// escape lands inside a //first:hotpath body. The go toolchain replays
// cached compiler output, so the pass is cheap and reliable on warm caches.

// EscapeSite is one escape-analysis finding from the compiler.
type EscapeSite struct {
	File string // as printed (relative to the build directory)
	Line int
	Msg  string
}

var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// ParseEscapeOutput extracts "escapes to heap" / "moved to heap" sites
// from `go build -gcflags=-m` output. Inlining chatter, package banners,
// and "leaking param" notes (which describe callers, not allocations) are
// ignored.
func ParseEscapeOutput(out []byte) []EscapeSite {
	var sites []EscapeSite
	for _, raw := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(raw))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		sites = append(sites, EscapeSite{File: m[1], Line: line, Msg: msg})
	}
	return sites
}

// CheckEscapes matches escape sites (with files resolved relative to
// buildDir) against every //first:hotpath body in pkgs. A site inside an
// annotated body is a finding unless its line carries
// //firstlint:allow hotpath <reason> — the documented slow-path escape
// hatch (first-touch allocations, panic formatting).
func CheckEscapes(buildDir string, sites []EscapeSite, pkgs []*Package) []Diagnostic {
	// Annotation positions are absolute (they come from go list's package
	// Dirs); escape sites are printed relative to the build directory, so
	// the join must be anchored even when buildDir is ".".
	if abs, err := filepath.Abs(buildDir); err == nil {
		buildDir = abs
	}
	var diags []Diagnostic
	for _, site := range sites {
		file := site.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(buildDir, file)
		}
		for _, pkg := range pkgs {
			for _, ann := range pkg.Dirs.Hotpaths() {
				if ann.File != file || site.Line < ann.BodyStart || site.Line > ann.BodyEnd {
					continue
				}
				if pkg.Dirs.allow("hotpath", file, site.Line) {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: file, Line: site.Line, Column: 1},
					Analyzer: "hotpath",
					Message:  fmt.Sprintf("heap escape inside //first:hotpath %s: %s (fix the allocation or annotate the line //firstlint:allow hotpath <reason>)", ann.FuncName, site.Msg),
				})
			}
		}
	}
	sortDiags(diags)
	return diags
}

// EscapeCheck runs the compiler over the module and applies CheckEscapes.
// modulePath scopes -gcflags so only this module's packages emit analysis.
func EscapeCheck(moduleDir, modulePath string, pkgs []*Package, patterns ...string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", fmt.Sprintf("-gcflags=%s/...=-m", modulePath)}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, buf.String())
	}
	return CheckEscapes(moduleDir, ParseEscapeOutput(buf.Bytes()), pkgs), nil
}
