// Fixture for the clockonly analyzer, loaded under a synthetic import path
// outside internal/clock so every wall waiter is a finding.
package livehttp

import "time"

func Nap() {
	time.Sleep(time.Millisecond) // want `time.Sleep waits on the raw wall clock`
}

func Deadline() <-chan time.Time {
	return time.After(time.Second) // want `time.After waits on the raw wall clock`
}

func Arm() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer waits on the raw wall clock`
}

func Ticking() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker waits on the raw wall clock`
}

// Allowed demonstrates the suppression grammar.
func Allowed() {
	//firstlint:allow clockonly fixture demonstrates the documented escape hatch
	time.Sleep(time.Millisecond)
}

// Measuring durations (as opposed to waiting on them) is not clockonly's
// business; no finding here.
func Span(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}
