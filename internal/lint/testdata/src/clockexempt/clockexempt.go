// Fixture proving clockonly exempts internal/clock itself: this file is
// loaded under github.com/argonne-first/first/internal/clock and must
// produce no findings despite using every wall waiter.
package clock

import "time"

func Nap() {
	time.Sleep(time.Millisecond)
}

func Arm() *time.Timer {
	return time.NewTimer(time.Second)
}

func Deadline() <-chan time.Time {
	return time.After(time.Second)
}
