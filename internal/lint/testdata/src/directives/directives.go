// Fixture for directive health: unknown verbs, unknown analyzers, unused
// allows, and misplaced //first: directives are all findings. Loaded with
// no analyzers so nothing can consume the allows.
package dirfixture

func Bogus() int {
	x := 1 //firstlint:bogus nope // want `unknown firstlint directive "bogus"`
	return x
}

func UnknownAnalyzer() int {
	y := 2 //firstlint:allow nosuch because reasons // want `names unknown analyzer nosuch`
	return y
}

func Unused() int {
	z := 3 //firstlint:allow det stale suppression // want `unused //firstlint:allow det`
	return z
}

func Misplaced() int {
	//first:hotpath // want `must appear in a function declaration's doc comment`
	return 4
}

//first:coldpath // want `unknown directive //first:coldpath`
func UnknownFirst() int {
	return 5
}

//first:hotpath // want `on a bodyless declaration`
func External() int
