// Fixture for the seedflow analyzer, loaded under the synthetic import path
// github.com/argonne-first/first/internal/chaosnet so the seed-minting scope
// rules apply. Mix and Draw stand in for the shared splitmix64 finalizer and
// a draw sink; seedflow recognizes both by callee name.
package chaosnet

import (
	"hash/fnv"
	"math/rand"
)

func Mix(x uint64) uint64 {
	x ^= x >> 30
	return x * 0x9e3779b97f4a7c15
}

func Draw(seed, key uint64) uint64 {
	return Mix(seed ^ key)
}

type Config struct {
	Seed uint64
}

func AdHocStream(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6) // want `rand.New builds an ad-hoc stream` `rand.NewSource builds an ad-hoc stream`
}

func HashSeed(name string) uint64 {
	h := fnv.New64a() // want `fnv hash in seed-minting code without a Mix call in HashSeed`
	h.Write([]byte(name))
	return h.Sum64()
}

// HashSeedFinalized folds the hash through Mix, so the fnv use is fine.
func HashSeedFinalized(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return Mix(h.Sum64())
}

func FoldedDraw(seed, idx uint64) uint64 {
	return Draw(seed^idx, 0) // want `seed folded from 2 variables by xor without Mix`
}

// MixedDraw is the blessed derivation: a Mix inside the fold.
func MixedDraw(seed, idx uint64) uint64 {
	return Draw(Mix(seed)^idx, 0)
}

// DomainSeparated xors with a constant lane tag — one variable, safe.
func DomainSeparated(seed uint64) uint64 {
	return Draw(seed^0x401, 0)
}

// CellSeeds reproduces the PR 7 cell-seed bug shape: a Seed-named variable
// assigned an unfinalized xor-fold of two variables.
func CellSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		cellSeed := base ^ uint64(i)<<40 // want `seed folded from 2 variables by xor without Mix`
		out = append(out, cellSeed)
	}
	return out
}

func BuildConfig(a, b uint64) Config {
	return Config{
		Seed: a ^ b, // want `seed folded from 2 variables by xor without Mix`
	}
}

// Allowed demonstrates the suppression grammar.
func Allowed(a, b uint64) uint64 {
	//firstlint:allow seedflow fixture stands in for a committed calibration schedule
	return Draw(a^b, 1)
}
