// Fixture for the det analyzer, loaded under the synthetic import path
// github.com/argonne-first/first/internal/sim so the deterministic-package
// scope rules apply.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func Wall() time.Time {
	return time.Now() // want `wall-clock time.Now`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time.Since`
}

func GlobalDraw() int {
	return rand.Intn(6) // want `global rand.Intn draws from the shared process-wide source`
}

// SeededDraw builds an explicitly seeded generator: the ctor is fine, and
// Intn on the instance is a method, not the global source.
func SeededDraw(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

func Launch(fn func()) {
	go fn() // want `goroutine launch in deterministic package internal/sim`
}

func UnsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is random`
		out = append(out, k)
	}
	return out
}

// SortedKeys gathers then sorts, so the iteration order cannot escape.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Allowed demonstrates the suppression grammar on a commutative fold.
func Allowed(m map[string]int) int {
	n := 0
	//firstlint:allow det commutative sum: iteration order cannot change the result
	for _, v := range m {
		n += v
	}
	return n
}
