package hotfixture

import "testing"

func TestZeroAlloc(t *testing.T) {
	if got := testing.AllocsPerRun(100, func() {
		Pinned()
		Missing()
	}); got != 0 {
		t.Fatalf("allocs: %v", got)
	}
}

func TestBudgeted(t *testing.T) {
	if got := testing.AllocsPerRun(100, func() {
		Loose()
	}); got > 1 {
		t.Fatalf("allocs: %v", got)
	}
}

// benchOnly lives in a test file: pins cover compiled code, so annotating
// a test helper is a finding.
//
//first:hotpath
func benchOnly() int { // want `//first:hotpath on benchOnly, which is not a compiled function of this package`
	return 6
}
