// Fixture for the hotpath analyzer's reverse and forward checks. The pins
// live in hotpath_test.go.
package hotfixture

// Pinned is measured directly by the 0-alloc pin; annotated, so no finding.
//
//first:hotpath
func Pinned() int {
	return helper() + 1
}

// helper is not pinned directly but is reachable from Pinned through the
// static call graph, so its annotation is covered.
//
//first:hotpath
func helper() int {
	return 2
}

// Unpinned carries the annotation but nothing pins it.
//
//first:hotpath
func Unpinned() int { // want `Unpinned is annotated //first:hotpath but no 0-alloc AllocsPerRun pin reaches it`
	return 3
}

// Missing is pinned 0-alloc by the test but lacks the annotation —
// removing //first:hotpath from a pinned function must be a finding.
func Missing() int { // want `Missing is pinned 0-alloc by an AllocsPerRun test but lacks //first:hotpath`
	return 4
}

// Loose is measured with a nonzero budget (> 1): budgeted pins bind
// nothing, so no annotation is required.
func Loose() *int {
	x := 5
	return &x
}
