package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "example.invalid/fixture")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return pkg
}

func diagMessages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

// A reason-less allow cannot be expressed in a want-comment fixture (any
// trailing text becomes the reason), so the grammar check lives here.
func TestAllowWithoutReasonIsMalformed(t *testing.T) {
	pkg := loadSrc(t, `package p

func F() int {
	//firstlint:allow det
	return 1
}
`)
	diags := pkg.Dirs.DirectiveDiags()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("want one needs-a-reason finding, got %q", diagMessages(diags))
	}
}

func TestAllowMissingAnalyzerIsMalformed(t *testing.T) {
	pkg := loadSrc(t, `package p

func F() int {
	//firstlint:allow
	return 1
}
`)
	diags := pkg.Dirs.DirectiveDiags()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer (missing)") {
		t.Fatalf("want one unknown-analyzer finding, got %q", diagMessages(diags))
	}
}

// A standalone allow covers the next code line, skipping blanks and other
// comments; a trailing allow covers its own line.
func TestAllowTargetLines(t *testing.T) {
	pkg := loadSrc(t, `package p

func F() int {
	//firstlint:allow det standalone covers the next code line

	// intervening comment
	a := 1
	b := 2 //firstlint:allow clockonly trailing covers its own line
	return a + b
}
`)
	if !pkg.Dirs.allow("det", filepath.Join(pkg.Dir, "a.go"), 7) {
		t.Error("standalone allow should cover line 7 (a := 1)")
	}
	if !pkg.Dirs.allow("clockonly", filepath.Join(pkg.Dir, "a.go"), 8) {
		t.Error("trailing allow should cover line 8 (b := 2)")
	}
	if pkg.Dirs.allow("det", filepath.Join(pkg.Dir, "a.go"), 8) {
		t.Error("det allow must not leak onto line 8")
	}
	// Both allows were consumed above, so directive health is clean.
	if diags := pkg.Dirs.DirectiveDiags(); len(diags) != 0 {
		t.Errorf("unexpected directive diags: %q", diagMessages(diags))
	}
}

func TestUnusedAllowReported(t *testing.T) {
	pkg := loadSrc(t, `package p

func F() int {
	//firstlint:allow seedflow nothing here mints seeds
	return 1
}
`)
	diags := pkg.Dirs.DirectiveDiags()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unused //firstlint:allow seedflow") {
		t.Fatalf("want one unused-allow finding, got %q", diagMessages(diags))
	}
}

func TestHotpathBindsBodyRange(t *testing.T) {
	pkg := loadSrc(t, `package p

// F is hot.
//
//first:hotpath pinned elsewhere
func F() int {
	return 1
}
`)
	anns := pkg.Dirs.Hotpaths()
	if len(anns) != 1 {
		t.Fatalf("want one annotation, got %d", len(anns))
	}
	ann := anns[0]
	if ann.FuncName != "F" || ann.BodyStart != 6 || ann.BodyEnd != 8 {
		t.Errorf("bad binding: %+v", ann)
	}
}
