package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar:
//
//	//firstlint:allow <analyzer> <reason...>
//	    Suppress <analyzer> findings on the directive's own line (trailing
//	    comment) or, for a comment standing alone, on the next code line.
//	    The reason is mandatory; reason-less allows are themselves findings.
//
//	//first:hotpath [note...]
//	    Placed in a function's doc comment: declares the function a 0-alloc
//	    hot path. The hotpath analyzer then requires an AllocsPerRun pin to
//	    reach the function, and the driver's escape phase requires the
//	    compiler to show no heap escapes inside its body.
//
// Anything else spelled //firstlint:... or //first:... is malformed and
// reported as a finding so typos cannot silently disable a gate.

// allowRec is one parsed //firstlint:allow, tracked for use so stale
// suppressions surface instead of rotting.
type allowRec struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// HotpathAnn is one //first:hotpath annotation bound to a function.
type HotpathAnn struct {
	FuncName  string
	File      string
	Pos       token.Position
	BodyStart int // first line of the body
	BodyEnd   int // last line of the body
}

// Directives is the per-package directive table.
type Directives struct {
	// allows maps file -> line -> analyzer -> record. A standalone comment
	// registers on its computed target line; a trailing comment on its own.
	allows    map[string]map[int]map[string]*allowRec
	hotpaths  []HotpathAnn
	malformed []Diagnostic
}

// allow reports whether an allow directive for analyzer covers file:line,
// marking it used.
func (d *Directives) allow(analyzer, file string, line int) bool {
	rec := d.allows[file][line][analyzer]
	if rec == nil {
		return false
	}
	rec.used = true
	return true
}

// Hotpaths returns the package's bound //first:hotpath annotations.
func (d *Directives) Hotpaths() []HotpathAnn { return d.hotpaths }

// DirectiveDiags reports malformed directives and allows that suppressed
// nothing. Call it only after every consumer — analyzers and the driver's
// escape phase — has had the chance to mark allows used.
func (d *Directives) DirectiveDiags() []Diagnostic {
	diags := append([]Diagnostic(nil), d.malformed...)
	for _, lines := range d.allows {
		for _, byAnalyzer := range lines {
			for _, rec := range byAnalyzer {
				if !rec.used {
					diags = append(diags, Diagnostic{
						Pos:      rec.pos,
						Analyzer: "directive",
						Message:  fmt.Sprintf("unused //firstlint:allow %s (%s): nothing to suppress here — remove it", rec.analyzer, rec.reason),
					})
				}
			}
		}
	}
	sortDiags(diags)
	return diags
}

func scanDirectives(pkg *Package) *Directives {
	d := &Directives{allows: make(map[string]map[int]map[string]*allowRec)}
	known := AnalyzerNames()

	// Bind //first:hotpath annotations: they are only meaningful inside a
	// function declaration's doc comment.
	hotpathDocs := make(map[*ast.Comment]*ast.FuncDecl)
	allFiles := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range allFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//first:") {
					hotpathDocs[c] = fd
				}
			}
		}
	}

	for _, f := range allFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//firstlint:"):
					d.scanAllow(pkg, c, known)
				case strings.HasPrefix(text, "//first:"):
					rest := strings.TrimPrefix(text, "//first:")
					word := rest
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						word = rest[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					if word != "hotpath" {
						d.malformed = append(d.malformed, Diagnostic{
							Pos: pos, Analyzer: "directive",
							Message: fmt.Sprintf("unknown directive //first:%s (only //first:hotpath exists)", word),
						})
						continue
					}
					fd, ok := hotpathDocs[c]
					if !ok {
						d.malformed = append(d.malformed, Diagnostic{
							Pos: pos, Analyzer: "directive",
							Message: "//first:hotpath must appear in a function declaration's doc comment",
						})
						continue
					}
					body := fd.Body
					if body == nil {
						d.malformed = append(d.malformed, Diagnostic{
							Pos: pos, Analyzer: "directive",
							Message: "//first:hotpath on a bodyless declaration",
						})
						continue
					}
					d.hotpaths = append(d.hotpaths, HotpathAnn{
						FuncName:  fd.Name.Name,
						File:      pos.Filename,
						Pos:       pos,
						BodyStart: pkg.Fset.Position(body.Lbrace).Line,
						BodyEnd:   pkg.Fset.Position(body.Rbrace).Line,
					})
				}
			}
		}
	}
	return d
}

func (d *Directives) scanAllow(pkg *Package, c *ast.Comment, known map[string]bool) {
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, "//firstlint:")
	fields := strings.Fields(rest)
	if len(fields) == 0 || fields[0] != "allow" {
		verb := "(empty)"
		if len(fields) > 0 {
			verb = fields[0]
		}
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: fmt.Sprintf("unknown firstlint directive %q (only //firstlint:allow <analyzer> <reason> exists)", verb),
		})
		return
	}
	if len(fields) < 2 || !known[fields[1]] {
		name := "(missing)"
		if len(fields) >= 2 {
			name = fields[1]
		}
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: fmt.Sprintf("//firstlint:allow names unknown analyzer %s", name),
		})
		return
	}
	if len(fields) < 3 {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: fmt.Sprintf("//firstlint:allow %s needs a reason: every surviving suppression documents why", fields[1]),
		})
		return
	}
	target := d.targetLine(pkg, pos)
	byLine := d.allows[pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string]*allowRec)
		d.allows[pos.Filename] = byLine
	}
	byAnalyzer := byLine[target]
	if byAnalyzer == nil {
		byAnalyzer = make(map[string]*allowRec)
		byLine[target] = byAnalyzer
	}
	byAnalyzer[fields[1]] = &allowRec{
		pos:      pos,
		analyzer: fields[1],
		reason:   strings.Join(fields[2:], " "),
	}
}

// targetLine computes which code line an allow directive covers: its own
// line for a trailing comment, else the next line that is neither blank nor
// comment-only (so allow directives stack above a statement).
func (d *Directives) targetLine(pkg *Package, pos token.Position) int {
	lines := srcLines(pkg, pos.Filename)
	if pos.Line-1 < len(lines) {
		before := lines[pos.Line-1]
		if pos.Column-1 <= len(before) && strings.TrimSpace(string(before[:pos.Column-1])) != "" {
			return pos.Line // trailing comment: covers its own line
		}
	}
	for l := pos.Line + 1; l <= len(lines); l++ {
		t := strings.TrimSpace(string(lines[l-1]))
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return l
	}
	return pos.Line + 1
}

func srcLines(pkg *Package, filename string) [][]byte {
	return bytes.Split(pkg.Src[filename], []byte("\n"))
}
