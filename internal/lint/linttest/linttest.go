// Package linttest runs firstlint analyzers over fixture packages in the
// analysistest idiom: fixture files carry `// want "regexp"` comments on
// the lines where diagnostics must fire, and the runner fails the test on
// any missing or unexpected finding. Fixtures load under synthetic import
// paths so the production scope rules (det packages, the clock exemption,
// seed-minting packages) apply to them unchanged.
package linttest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"github.com/argonne-first/first/internal/lint"
)

var wantRe = regexp.MustCompile(`// want (.*)$`)

// Run loads the fixture directory under importPath, applies the analyzers
// plus the directive-health check, and matches findings against the
// fixture's `// want` expectations.
func Run(t *testing.T, dir, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	got := lint.RunPackage(pkg, analyzers)
	got = append(got, pkg.Dirs.DirectiveDiags()...)

	type key struct {
		file string
		line int
	}
	want := make(map[key][]*regexp.Regexp)
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range splitWantPatterns(t, file, i+1, m[1]) {
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, pat, err)
				}
				k := key{file, i + 1}
				want[k] = append(want[k], rx)
			}
		}
	}

	for _, d := range got {
		k := key{d.Pos.Filename, d.Pos.Line}
		rxs := want[k]
		matched := -1
		for i, rx := range rxs {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		want[k] = append(rxs[:matched], rxs[matched+1:]...)
		if len(want[k]) == 0 {
			delete(want, k)
		}
	}
	for k, rxs := range want {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// splitWantPatterns parses the backquoted or double-quoted string literals
// after `// want`.
func splitWantPatterns(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	var sc scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("", fset.Base(), len(s))
	sc.Init(f, []byte(s), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			t.Fatalf("%s:%d: want expectation must be string literals, got %v", file, line, tok)
		}
		unq := lit[1 : len(lit)-1]
		if lit[0] == '"' {
			if _, err := fmt.Sscanf(lit, "%q", &unq); err != nil {
				t.Fatalf("%s:%d: bad want literal %s: %v", file, line, lit, err)
			}
		}
		out = append(out, unq)
	}
	return out
}
