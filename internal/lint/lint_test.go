package lint_test

import (
	"testing"

	"github.com/argonne-first/first/internal/lint"
	"github.com/argonne-first/first/internal/lint/linttest"
)

// Fixtures load under synthetic module-prefixed import paths so the
// production scope rules (det packages, the clock exemption, seed-minting
// packages) apply to them unchanged.
const module = "github.com/argonne-first/first"

func TestDetAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/det", module+"/internal/sim", lint.Det)
}

func TestClockOnlyAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/clockonly", module+"/internal/livehttp", lint.ClockOnly)
}

func TestClockOnlyExemptsClockPackage(t *testing.T) {
	linttest.Run(t, "testdata/src/clockexempt", module+"/internal/clock", lint.ClockOnly)
}

func TestSeedFlowAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/seedflow", module+"/internal/chaosnet", lint.SeedFlow)
}

func TestHotPathAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata/src/hotpath", module+"/internal/hotfixture", lint.HotPath)
}

func TestDirectiveHealth(t *testing.T) {
	linttest.Run(t, "testdata/src/directives", module+"/internal/dirfixture")
}
