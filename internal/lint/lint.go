// Package lint implements firstlint, the repo-specific static-analysis
// suite that turns the invariants the differential and AllocsPerRun suites
// only sample into compile-adjacent gates:
//
//   - det: deterministic packages must not read the wall clock, use the
//     global math/rand, launch goroutines, or let map-iteration order
//     escape into reports or event schedules.
//   - clockonly: all waiting outside internal/clock must flow through the
//     scaled clock — time.Sleep/After/NewTimer and friends are forbidden.
//   - seedflow: chaos and workload seeds must derive from the shared
//     splitmix64 Mix; ad-hoc hashes and xor-folded seeds are the
//     PR 7 collision bug class, caught at analysis time.
//   - hotpath: //first:hotpath annotations and 0-alloc AllocsPerRun pins
//     are cross-checked both ways, and (driver-level) the compiler's
//     escape analysis must show no heap escapes inside annotated bodies.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Reportf) so the analyzers can migrate to the real
// multichecker when the external dependency becomes available; it is built
// on the standard library alone (go/parser + go/types with the source
// importer) because this module currently vendors nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's compiled files, parsed with comments and
	// type-checked; Info covers exactly these.
	Files []*ast.File
	// TestFiles are the package's _test.go files (in-package and external),
	// parsed but NOT type-checked — only syntactic checks may use them.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	// Path is the import path used for scope decisions. Fixtures load with
	// synthetic paths so the production scope rules apply unchanged.
	Path string
	// Dirs holds the package's firstlint directives; Reportf consults it
	// to suppress allowed findings.
	Dirs *Directives

	sink *[]Diagnostic
}

// Reportf records a finding unless an //firstlint:allow directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.Dirs.allow(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the firstlint suite in the order the driver runs it.
var All = []*Analyzer{Det, ClockOnly, SeedFlow, HotPath}

// AnalyzerNames is the set of names //firstlint:allow accepts.
func AnalyzerNames() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}

// RunPackage runs the given analyzers over one loaded package and returns
// their findings. Directive health (malformed or unused directives) is
// reported separately by DirectiveDiags once every consumer of the
// package's directives — including the driver's escape phase — has run.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Pkg,
			Info:      pkg.Info,
			Path:      pkg.Path,
			Dirs:      pkg.Dirs,
			sink:      &diags,
		}
		a.Run(pass)
	}
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ModulePath is the import-path prefix scope rules strip. Fixture packages
// load under synthetic paths carrying this prefix so the same rules fire.
const ModulePath = "github.com/argonne-first/first"

// relPath strips the module prefix from an import path; paths outside the
// module come back unchanged.
func relPath(path string) string {
	if path == ModulePath {
		return ""
	}
	const pfx = ModulePath + "/"
	if len(path) > len(pfx) && path[:len(pfx)] == pfx {
		return path[len(pfx):]
	}
	return path
}

// funcObj resolves a call expression's callee to its types.Func, or nil.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgLevelFunc reports whether fn is a package-level function (not a
// method) belonging to the package with import path pkgPath.
func pkgLevelFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
