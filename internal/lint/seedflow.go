package lint

import (
	"go/ast"
	"strings"
)

// SeedFlow polices how chaos and workload seeds are derived. The PR 7
// seed-collision bug (cell seeds folded as seed^Clusters<<40^Requests
// collided for same-shape cells) is a class, not an instance: any xor-fold
// of two or more variables without a splitmix64 Mix in the chain can
// collide, and any ad-hoc hash used as a stream seed bypasses the shared
// finalizer. Three rules, scoped to the packages that mint seeds:
//
//  1. rand.New/rand.NewSource outside internal/sim — streams must come
//     from sim.NewRNG so all experiment randomness shares one root.
//  2. fnv hashing in chaos/workload/experiment code whose enclosing
//     function never calls Mix — folding a hash straight into a seed
//     skips the finalizer that guarantees avalanche.
//  3. seed expressions (arguments of NewRNG/NewSource/Draw/Fork or values
//     assigned to Seed fields) that xor-combine two or more non-constant
//     operands with no Mix call inside the fold.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "chaos and workload seeds must derive from the shared splitmix64 Mix",
	Run:  runSeedFlow,
}

// seedMintingPackages mint chaos or workload seeds; rules 2 and 3 apply
// only here.
var seedMintingPackages = map[string]bool{
	"internal/chaosnet":    true,
	"internal/workload":    true,
	"internal/experiments": true,
	"internal/desmodel":    true,
}

// seedSinks are callee names whose arguments are stream seeds or draw keys.
var seedSinks = map[string]bool{
	"NewRNG":    true,
	"NewSource": true,
	"Draw":      true,
}

func runSeedFlow(pass *Pass) {
	rel := relPath(pass.Path)
	minting := seedMintingPackages[rel]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callsMix := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "Mix" {
					callsMix = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fn := funcObj(pass.Info, n)
					if fn != nil && (fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2")) &&
						pkgLevelFunc(fn, fn.Pkg().Path()) && (fn.Name() == "New" || fn.Name() == "NewSource") && rel != "internal/sim" {
						pass.Reportf(n.Pos(), "%s.%s builds an ad-hoc stream: derive generators from sim.NewRNG so every stream shares the seeded root", fn.Pkg().Name(), fn.Name())
					}
					if minting && fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "hash/fnv" && !callsMix {
						pass.Reportf(n.Pos(), "fnv hash in seed-minting code without a Mix call in %s: finalize derived seeds with the shared splitmix64 Mix", fd.Name.Name)
					}
					if minting && seedSinks[calleeName(n)] {
						for _, arg := range n.Args {
							checkSeedFold(pass, arg)
						}
					}
				case *ast.AssignStmt:
					if !minting {
						return true
					}
					for i, lhs := range n.Lhs {
						if i < len(n.Rhs) && isSeedName(lhs) {
							checkSeedFold(pass, n.Rhs[i])
						}
					}
				case *ast.KeyValueExpr:
					if !minting {
						return true
					}
					if id, ok := n.Key.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "seed") {
						checkSeedFold(pass, n.Value)
					}
				}
				return true
			})
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isSeedName(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "seed")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "seed")
	}
	return false
}

// checkSeedFold flags expr when it xor-folds two or more non-constant
// operands without a Mix call anywhere in the fold: x^const is safe domain
// separation, Mix(a)^b is the blessed derivation, but a^b can collide.
func checkSeedFold(pass *Pass, expr ast.Expr) {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok {
		return
	}
	hasXor, hasMix, vars := false, false, 0
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok {
			if b.Op.String() == "^" {
				hasXor = true
			}
			walk(b.X)
			walk(b.Y)
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "Mix" {
				hasMix = true
			}
			return true
		})
		if tv, ok := pass.Info.Types[e]; ok && tv.Value == nil {
			vars++
		}
	}
	walk(bin)
	if hasXor && !hasMix && vars >= 2 {
		pass.Reportf(expr.Pos(), "seed folded from %d variables by xor without Mix: xor-folds collide (the PR 7 cell-seed bug class) — finalize with the shared splitmix64 Mix", vars)
	}
}
