package first_test

// One benchmark per table/figure in the paper's evaluation (§5). Each
// iteration regenerates the full experiment on the DES substrate and
// reports the headline measurements as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same series the paper's figures plot. cmd/first-bench renders
// the same runners as human-readable paper-vs-measured tables.

import (
	"fmt"
	"testing"

	"github.com/argonne-first/first/internal/experiments"
)

// BenchmarkFig3RateSweep regenerates Figure 3: FIRST vs vLLM-Direct serving
// Llama-3.3-70B on one 8×A100 node across offered request rates.
func BenchmarkFig3RateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig3(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Rate == "inf" {
					prefix := "direct"
					if r.System == "FIRST" {
						prefix = "first"
					}
					b.ReportMetric(r.M.ReqPerSec, prefix+"_req/s")
					b.ReportMetric(r.M.TokPerSec, prefix+"_tok/s")
					b.ReportMetric(r.M.MedianLatS, prefix+"_med_s")
				}
			}
		}
	}
}

// BenchmarkFig4AutoScale regenerates Figure 4: 1..4 auto-scaled instances
// of Llama-3.3-70B under maximum load.
func BenchmarkFig4AutoScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig4(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.M.ReqPerSec, fmt.Sprintf("inst%d_req/s", r.Instances))
				b.ReportMetric(r.M.MedianLatS, fmt.Sprintf("inst%d_med_s", r.Instances))
			}
		}
	}
}

// BenchmarkFig5OpenAIComparison regenerates Figure 5: FIRST (Llama-3.1-8B)
// vs the rate-limited external cloud API (GPT-4o-mini class).
func BenchmarkFig5OpenAIComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig5(experiments.DefaultSeed)
		if i == b.N-1 {
			b.ReportMetric(rows[0].M.ReqPerSec, "first_req/s")
			b.ReportMetric(rows[0].M.TokPerSec, "first_tok/s")
			b.ReportMetric(rows[0].M.MedianLatS, "first_med_s")
			b.ReportMetric(rows[1].M.ReqPerSec, "openai_req/s")
			b.ReportMetric(rows[1].M.MedianLatS, "openai_med_s")
		}
	}
}

// BenchmarkTable1WebUIConcurrency regenerates Table 1: closed-loop WebUI
// sessions at 50-700 concurrency over 60 s and 120 s windows for three
// models.
func BenchmarkTable1WebUIConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.RunTable1(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, c := range cells {
				if c.Model == "Llama-3.1-8B" && (c.Concurrency == 50 || c.Concurrency == 700) {
					b.ReportMetric(c.TokPS, fmt.Sprintf("8B_c%d_%ds_tok/s", c.Concurrency, c.WindowS))
				}
			}
		}
	}
}

// BenchmarkBatchMode regenerates the §5.3.1 batch measurement: 1000
// long-form requests through the offline engine as one dedicated job.
func BenchmarkBatchMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunBatch(experiments.DefaultSeed)
		if i == b.N-1 {
			b.ReportMetric(res.OverallTokPS, "overall_tok/s")
			b.ReportMetric(res.TotalTimeS, "total_s")
		}
	}
}

// BenchmarkAblationPolling regenerates the Optimization 1 ablation:
// 2-second result polling vs concurrent futures.
func BenchmarkAblationPolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunOpt1Polling(experiments.DefaultSeed)
		if i == b.N-1 {
			b.ReportMetric(rows[0].M.MedianLatS, "polling_med_s")
			b.ReportMetric(rows[1].M.MedianLatS, "futures_med_s")
		}
	}
}

// BenchmarkAblationAuthCache regenerates the Optimization 2 ablation:
// per-request Globus introspection (rate-limited) vs the token cache.
func BenchmarkAblationAuthCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunOpt2AuthCache(experiments.DefaultSeed)
		if i == b.N-1 {
			b.ReportMetric(rows[0].M.MedianLatS, "uncached_med_s")
			b.ReportMetric(rows[1].M.MedianLatS, "cached_med_s")
		}
	}
}

// BenchmarkAblationAsyncGateway regenerates the Optimization 3 ablation:
// the Artillery run (100 req/s × 300 s) against the legacy synchronous
// gateway vs the async gateway.
func BenchmarkAblationAsyncGateway(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunOpt3AsyncGateway(experiments.DefaultSeed)
		if i == b.N-1 {
			b.ReportMetric(rows[0].M.ReqPerSec, "sync_req/s")
			b.ReportMetric(rows[1].M.ReqPerSec, "async_req/s")
			b.ReportMetric(float64(rows[1].HubQueuePeak), "async_fabric_queue")
		}
	}
}

// BenchmarkAblationRouting regenerates the routing-policy design ablation
// (least-loaded vs round-robin vs random over 4 instances).
func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAblationRouting(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.M.ReqPerSec, r.Policy+"_req/s")
			}
		}
	}
}

// BenchmarkArrivalStorm regenerates the arrival-storm study: 10⁵–10⁶
// distinct one-shot users flooding the gateway front-end, single lock vs
// sharded admission.
func BenchmarkArrivalStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunStorm(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Users == 1_000_000 {
					b.ReportMetric(r.M.ReqPerSec, fmt.Sprintf("shards%d_req/s", r.Shards))
				}
			}
		}
	}
}

// BenchmarkFederate regenerates the federation-at-scale family: 10⁶
// open-loop requests plus 10⁴ WebUI sessions routed by the real priority
// ladder across 2-8 clusters with walltime churn and migration.
func BenchmarkFederate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFederate(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Mode == "open" && r.Clusters == 4 {
					b.ReportMetric(r.M.ReqPerSec, "open_c4_req/s")
					b.ReportMetric(float64(r.Migrations), "open_c4_migrations")
				}
				if r.Mode == "webui" {
					b.ReportMetric(r.M.ReqPerSec, "webui_req/s")
				}
			}
		}
	}
}

// BenchmarkAutoScale regenerates the Fig4-style auto-scaling family:
// diurnal and bursty demand shifting between models across 2-8 clusters,
// with per-cluster instance pools growing through the real scheduler
// cold-start path and draining back down behind each wave.
func BenchmarkAutoScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAutoScale(experiments.DefaultSeed)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Shape == "diurnal" && r.Clusters == 4 {
					b.ReportMetric(r.M.ReqPerSec, "diurnal_c4_req/s")
					b.ReportMetric(float64(r.ScaleUps), "diurnal_c4_scale_ups")
					b.ReportMetric(float64(r.ScaleDowns), "diurnal_c4_scale_downs")
				}
				if r.Shape == "bursty" && r.Clusters == 4 {
					b.ReportMetric(r.M.ReqPerSec, "bursty_c4_req/s")
				}
			}
		}
	}
}

// BenchmarkEngineStep measures the raw cost of one continuous-batching
// iteration of the engine state machine (substrate micro-benchmark).
func BenchmarkEngineStep(b *testing.B) {
	benchEngineStep(b)
}
