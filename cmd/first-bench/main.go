// first-bench regenerates every table and figure from the paper's
// evaluation (§5) on the simulated substrate and prints paper-vs-measured
// rows. Run with -exp to select one experiment.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/argonne-first/first/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|fig5|table1|batch|opt1|opt2|opt3|all")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed")
	flag.Parse()
	if err := experiments.Report(os.Stdout, *exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
