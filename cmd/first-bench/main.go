// first-bench regenerates every table and figure from the paper's
// evaluation (§5) on the simulated substrate and prints paper-vs-measured
// rows. Independent experiment cells fan out across cores (-workers); run
// with -exp to select one experiment, and -json to append a machine-readable
// BENCH_<n>.json perf record alongside the human-readable report.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/argonne-first/first/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|fig5|table1|batch|opt1|opt2|opt3|routing|all")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed")
	workers := flag.Int("workers", 0, "fleet goroutines (0 = GOMAXPROCS, 1 = sequential)")
	emitJSON := flag.Bool("json", false, "also write a BENCH_<n>.json perf record (always regenerates the full suite, regardless of -exp)")
	jsonOut := flag.String("json-out", "", "explicit path for the JSON record (implies -json)")
	flag.Parse()

	fleet := experiments.Fleet{Workers: *workers}
	if err := experiments.ReportOn(os.Stdout, *exp, *seed, fleet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *emitJSON || *jsonOut != "" {
		// The record always covers every experiment so BENCH_<n>.json files
		// stay comparable across runs, whatever -exp selected above.
		rec := experiments.CollectBench(fleet, *seed)
		path := *jsonOut
		if path == "" {
			path = experiments.NextBenchPath(".")
		}
		if err := experiments.WriteBench(rec, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (total %.0f ms)\n", path, rec.WallMS)
	}
}
