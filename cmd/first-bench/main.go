// first-bench regenerates every table and figure from the paper's
// evaluation (§5) on the simulated substrate and prints paper-vs-measured
// rows. Independent experiment cells fan out across cores (-workers); run
// with -exp to select one experiment, and -json to append a machine-readable
// BENCH_<n>.json perf record alongside the human-readable report. -diff
// compares the two newest records and fails on perf regressions (`make
// bench-diff`).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/argonne-first/first/internal/experiments"
	"github.com/argonne-first/first/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4|fig5|table1|batch|opt1|opt2|opt3|routing|storm|federate|autoscale|livefed|all")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed")
	workers := flag.Int("workers", 0, "fleet goroutines (0 = GOMAXPROCS, 1 = sequential)")
	par := flag.Int("par", 0, "window executors for the sharded conservative-lookahead kernel on the federation families (0 = sequential kernel; 1 = parallel reference)")
	queue := flag.String("queue", "calendar", "kernel event queue: calendar|heap (heap is the reference; outputs must be byte-identical)")
	emitJSON := flag.Bool("json", false, "also write a BENCH_<n>.json perf record (always regenerates the full suite, regardless of -exp)")
	jsonOut := flag.String("json-out", "", "explicit path for the JSON record (implies -json)")
	diff := flag.Bool("diff", false, "compare the two newest BENCH_<n>.json records and exit 1 on perf regressions (skips the report)")
	diffDir := flag.String("diff-dir", ".", "directory holding BENCH_<n>.json records for -diff")
	calibOut := flag.String("calib-out", "", "directory to preserve divergent livefed schedules when the calibration gate trips (-exp livefed)")
	flag.Parse()

	if *diff {
		regs, notice, skipped, err := experiments.DiffLatest(*diffDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if skipped {
			// Nothing to compare (single-record fork checkout, fresh tree):
			// that is not a regression, so degrade to a clear notice + ok.
			fmt.Println("bench-diff: " + notice)
			return
		}
		if notice != "" {
			fmt.Println(notice)
		}
		if len(regs) == 0 {
			fmt.Println("bench-diff: no regressions")
			return
		}
		fmt.Printf("bench-diff: %d regression(s) (>%.0f%% slower, or any extra allocs/op):\n",
			len(regs), 100*experiments.WallRegressionThreshold)
		for _, r := range regs {
			fmt.Println("  " + r.String())
		}
		os.Exit(1)
	}

	fleet := experiments.Fleet{Workers: *workers, Par: *par}
	switch *queue {
	case "", "calendar":
		fleet.Queue = sim.QueueCalendar
	case "heap":
		fleet.Queue = sim.QueueHeap
	default:
		fmt.Fprintf(os.Stderr, "unknown -queue %q (want calendar or heap)\n", *queue)
		os.Exit(2)
	}
	if *exp == "livefed" {
		// livefed is the gated path: the report includes the sim-vs-real
		// calibration table, and a tolerance-gate trip is a failing exit
		// code (with the divergent schedule preserved under -calib-out).
		if !experiments.RunLiveFedGateOn(os.Stdout, fleet, *seed, experiments.LiveFedCells, *calibOut) {
			os.Exit(1)
		}
	} else if err := experiments.ReportOn(os.Stdout, *exp, *seed, fleet); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *emitJSON || *jsonOut != "" {
		// The record always covers every experiment so BENCH_<n>.json files
		// stay comparable across runs, whatever -exp selected above.
		rec := experiments.CollectBench(fleet, *seed)
		path := *jsonOut
		if path == "" {
			path = experiments.NextBenchPath(".")
		}
		if err := experiments.WriteBench(rec, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (total %.0f ms)\n", path, rec.WallMS)
	}
}
