// first-gateway boots a complete in-process FIRST installation (the §4
// deployment: Sophia + Polaris clusters, default model deployments, auth,
// fabric, batch runner) and serves the OpenAI-compatible Inference Gateway
// over HTTP. The simulated substrate runs on a time-dilated clock so cold
// starts take milliseconds.
//
// A demo user is registered at startup and its access token printed, so:
//
//	first-gateway -addr :8080 -scale 1000
//	curl -H "Authorization: Bearer $TOKEN" localhost:8080/v1/models
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int64("scale", 1000, "clock speed-up factor for the simulated substrate")
	persist := flag.String("persist", "", "directory for store snapshots (empty = in-memory only)")
	configPath := flag.String("config", "", "installation config JSON (empty = paper's default testbed)")
	shards := flag.Int("shards", 0, "gateway front-end shards (0 = GOMAXPROCS-derived, 1 = single-lock front-end); with -config use the file's gateway.shards")
	flag.Parse()

	var sys *core.System
	var err error
	if *configPath != "" {
		sys, err = core.NewSystemFromFile(*configPath, clock.NewScaled(*scale))
	} else {
		cfg := core.DefaultTestbedConfig(clock.NewScaled(*scale))
		cfg.Gateway.Shards = *shards
		sys, err = core.NewSystem(cfg)
	}
	if err != nil {
		log.Fatalf("building installation: %v", err)
	}
	defer sys.Close()
	// Expose the §7 future-work HPC-simulation tool on the first cluster.
	for name := range sys.Clusters {
		if err := sys.RegisterHPCSimulationTool(name, ""); err != nil {
			log.Printf("warning: simulation tool: %v", err)
		}
		break
	}

	if *persist != "" {
		if err := sys.Store.Load(*persist); err != nil {
			log.Printf("warning: loading store snapshot: %v", err)
		}
		defer func() {
			if err := sys.Store.Save(*persist); err != nil {
				log.Printf("warning: saving store snapshot: %v", err)
			}
		}()
	}

	if err := sys.RegisterUser("demo", "demo@anl.gov"); err != nil {
		log.Fatalf("registering demo user: %v", err)
	}
	grant, err := sys.Login("demo")
	if err != nil {
		log.Fatalf("demo login: %v", err)
	}
	fmt.Fprintf(os.Stderr, "first-gateway listening on %s (clock %d×)\n", *addr, *scale)
	fmt.Fprintf(os.Stderr, "demo token (48h):\n  export FIRST_TOKEN=%s\n", grant.AccessToken)
	fmt.Fprintf(os.Stderr, "models: 70B+8B on sophia, 8B federated to polaris, NV-Embed-v2 on sophia\n")

	if err := http.ListenAndServe(*addr, sys.Gateway); err != nil {
		log.Fatal(err)
	}
}
