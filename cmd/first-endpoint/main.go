// first-endpoint runs a standalone Globus-Compute-style endpoint on a
// simulated cluster (the administrator's side of §3.2.2): it deploys the
// requested models, keeps them hot, and prints qstat + deployment status
// periodically — a facility operator's view of what the fabric does under
// the gateway.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
)

func main() {
	name := flag.String("cluster", "sophia", "cluster name")
	nodes := flag.Int("nodes", 24, "node count")
	gpus := flag.Int("gpus", 8, "GPUs per node")
	models := flag.String("models", perfmodel.Llama70B+","+perfmodel.Llama8B, "comma-separated models to deploy")
	minInst := flag.Int("min", 1, "min instances per model")
	maxInst := flag.Int("max", 2, "max instances per model")
	scale := flag.Int64("scale", 1000, "clock speed-up factor")
	interval := flag.Duration("interval", 2*time.Second, "status print interval (wall time)")
	iterations := flag.Int("iterations", 0, "status prints before exiting (0 = forever)")
	flag.Parse()

	clk := clock.NewScaled(*scale)
	cl := cluster.New(*name, *nodes, *gpus, perfmodel.A100_40)
	sched := scheduler.New(cl, clk, scheduler.Config{})
	ep, err := fabric.NewEndpoint(fabric.EndpointConfig{
		ID:        "ep-" + *name,
		Scheduler: sched,
	}, clk, metrics.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	for _, model := range strings.Split(*models, ",") {
		model = strings.TrimSpace(model)
		if model == "" {
			continue
		}
		if _, err := ep.Deploy(fabric.DeploymentConfig{
			Model:        model,
			MinInstances: *minInst,
			MaxInstances: *maxInst,
		}); err != nil {
			log.Fatalf("deploying %s: %v", model, err)
		}
		fmt.Printf("deployed %s (min=%d max=%d)\n", model, *minInst, *maxInst)
	}

	// The status poll is a real-world cadence: it sleeps on the wall clock
	// (via internal/clock, per the clockonly gate), not the scaled clk.
	wall := clock.NewReal()
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		wall.Sleep(*interval)
		st := cl.Status()
		fmt.Printf("\n[%s] cluster %s: %d/%d nodes free, %d/%d GPUs free\n",
			time.Now().Format("15:04:05"), st.Name, st.FreeNodes, st.TotalNodes, st.FreeGPUs, st.TotalGPUs)
		for _, ms := range ep.ModelStatuses() {
			fmt.Printf("  model %-50s state=%-8s running=%d starting=%d queued=%d\n",
				ms.Model, ms.State, ms.Running, ms.Starting, ms.Queued)
		}
		for _, jv := range sched.Qstat() {
			fmt.Printf("  job %4d %-28s %-9s gpus=%d wait=%s run=%s\n",
				jv.ID, jv.Name, jv.State, jv.GPUs, jv.QueueWait.Truncate(time.Second), jv.Runtime.Truncate(time.Second))
		}
	}
}
