// firstctl is the researcher-facing CLI (§4.6): chat, embeddings, model and
// job listings, and batch submission against a running first-gateway.
//
//	firstctl -gateway http://localhost:8080 -token $FIRST_TOKEN models
//	firstctl chat -model meta-llama/Meta-Llama-3.1-8B-Instruct -m "hello"
//	firstctl jobs
//	firstctl batch-submit -model ... -file requests.jsonl
//	firstctl batch-status -id batch_000001
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/openaiapi"
)

func main() {
	gatewayURL := flag.String("gateway", envOr("FIRST_GATEWAY", "http://localhost:8080"), "gateway base URL")
	token := flag.String("token", os.Getenv("FIRST_TOKEN"), "access token (or FIRST_TOKEN)")
	timeout := flag.Duration("timeout", 5*time.Minute, "request timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := client.New(*gatewayURL, *token)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	var err error
	switch cmd {
	case "models":
		err = cmdModels(ctx, c)
	case "jobs":
		err = cmdJobs(ctx, c)
	case "chat":
		err = cmdChat(ctx, c, args)
	case "embed":
		err = cmdEmbed(ctx, c, args)
	case "batch-submit":
		err = cmdBatchSubmit(ctx, c, args)
	case "batch-status":
		err = cmdBatchStatus(ctx, c, args)
	case "batch-results":
		err = cmdBatchResults(ctx, c, args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "firstctl:", err)
		os.Exit(1)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: firstctl [flags] <command>
commands:
  models                                 list hosted models
  jobs                                   model availability (running/starting/queued)
  chat -model M -m TEXT [-max N] [-stream]
  embed -model M -input TEXT
  batch-submit -model M -file F.jsonl    submit a batch job
  batch-status -id ID
  batch-results -id ID`)
	os.Exit(2)
}

func cmdModels(ctx context.Context, c *client.Client) error {
	list, err := c.Models(ctx)
	if err != nil {
		return err
	}
	for _, m := range list.Data {
		fmt.Printf("%-55s %s\n", m.ID, m.Kind)
	}
	return nil
}

func cmdJobs(ctx context.Context, c *client.Client) error {
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-55s %-12s %-10s %8s %8s %8s\n", "MODEL", "ENDPOINT", "STATE", "RUNNING", "STARTING", "QUEUED")
	for _, m := range jobs.Models {
		fmt.Printf("%-55s %-12s %-10s %8d %8d %8d\n", m.Model, m.Endpoint, m.State, m.Running, m.Starting, m.Queued)
	}
	return nil
}

func cmdChat(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("chat", flag.ExitOnError)
	model := fs.String("model", "", "model name")
	message := fs.String("m", "", "user message")
	maxTok := fs.Int("max", 128, "max completion tokens")
	stream := fs.Bool("stream", false, "stream the response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := openaiapi.ChatCompletionRequest{
		Model:     *model,
		Messages:  []openaiapi.Message{{Role: "user", Content: *message}},
		MaxTokens: *maxTok,
	}
	if *stream {
		_, err := c.ChatCompletionStream(ctx, req, func(delta string) { fmt.Print(delta) })
		fmt.Println()
		return err
	}
	resp, err := c.ChatCompletion(ctx, req)
	if err != nil {
		return err
	}
	fmt.Println(resp.Choices[0].Message.Content)
	fmt.Fprintf(os.Stderr, "[usage: %d prompt + %d completion tokens]\n",
		resp.Usage.PromptTokens, resp.Usage.CompletionTokens)
	return nil
}

func cmdEmbed(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	model := fs.String("model", "nvidia/NV-Embed-v2", "embedding model")
	input := fs.String("input", "", "text to embed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := c.Embeddings(ctx, openaiapi.EmbeddingRequest{Model: *model, Input: []string{*input}})
	if err != nil {
		return err
	}
	v := resp.Data[0].Embedding
	fmt.Printf("dim=%d head=[%.4f %.4f %.4f %.4f ...]\n", len(v), v[0], v[1], v[2], v[3])
	return nil
}

func cmdBatchSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("batch-submit", flag.ExitOnError)
	model := fs.String("model", "", "model name")
	file := fs.String("file", "", "JSONL input file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	var lines []openaiapi.BatchRequestLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line openaiapi.BatchRequestLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("parsing %s: %w", *file, err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	b, err := c.CreateBatch(ctx, openaiapi.CreateBatchRequest{Model: *model, InputLines: lines})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s: %d requests, status=%s\n", b.ID, b.Total, b.Status)
	return nil
}

func cmdBatchStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("batch-status", flag.ExitOnError)
	id := fs.String("id", "", "batch id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := c.GetBatch(ctx, *id)
	if err != nil {
		return err
	}
	fmt.Printf("%s status=%s completed=%d/%d output_tokens=%d\n", b.ID, b.Status, b.Completed, b.Total, b.OutputTokens)
	if b.Error != "" {
		fmt.Printf("error: %s\n", b.Error)
	}
	return nil
}

func cmdBatchResults(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("batch-results", flag.ExitOnError)
	id := fs.String("id", "", "batch id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lines, err := c.BatchResults(ctx, *id)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for _, line := range lines {
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
