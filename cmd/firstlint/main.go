// Command firstlint runs the repo's static-analysis suite — det,
// clockonly, seedflow, hotpath — over the module, plus the driver-level
// escape-analysis cross-check for //first:hotpath bodies, and exits
// nonzero on any finding. `make lint` wires it into the tier-1 check
// chain; see internal/lint for the analyzer contracts and the
// //firstlint:allow directive grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/argonne-first/first/internal/lint"
)

func main() {
	escape := flag.Bool("escape", true, "run the go build -gcflags=-m escape cross-check for //first:hotpath bodies")
	dir := flag.String("C", ".", "module directory to lint")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modulePath, err := goModulePath(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "firstlint:", err)
		os.Exit(2)
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "firstlint:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.RunPackage(pkg, lint.All)...)
	}
	if *escape {
		ediags, err := lint.EscapeCheck(*dir, modulePath, pkgs, patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "firstlint:", err)
			os.Exit(2)
		}
		diags = append(diags, ediags...)
	}
	// Directive health last: the escape phase consumes hotpath line
	// allows, so unused-allow detection must run after it.
	for _, pkg := range pkgs {
		diags = append(diags, pkg.Dirs.DirectiveDiags()...)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "firstlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func goModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
