package first_test

// Substrate micro-benchmarks: the raw costs of the core data-plane pieces,
// independent of any experiment scenario.

import (
	"fmt"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

func benchEngineStep(b *testing.B) {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := serving.NewEngine(serving.Config{Model: model, GPU: perfmodel.A100_40})
	if err != nil {
		b.Fatal(err)
	}
	// Keep a saturated batch alive throughout.
	for i := 0; i < 512; i++ {
		eng.Submit(0, 100, 1<<20, nil)
	}
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Step(now)
		now += res.Duration
	}
}

// BenchmarkKernelEvents measures DES kernel event throughput on the
// near-uniform schedules the figure runs produce, at several standing queue
// depths and for both queue kinds — the calendar queue (default) against
// the 4-ary heap reference. Depth 1 is the historical series; the deeper
// depths are where the heap pays O(log n) per event and the calendar stays
// O(1).
func BenchmarkKernelEvents(b *testing.B) {
	for _, q := range []sim.QueueKind{sim.QueueCalendar, sim.QueueHeap} {
		for _, depth := range []int{1, 64, 1024, 16384} {
			b.Run(fmt.Sprintf("queue=%s/depth=%d", q, depth), func(b *testing.B) {
				k := sim.NewKernelWith(q)
				remaining := b.N
				var fn func()
				fn = func() {
					remaining--
					if remaining > 0 {
						k.Schedule(time.Duration(depth)*time.Microsecond, fn)
					}
				}
				// A standing population of `depth` chains, each rescheduling
				// itself depth µs ahead: pops stay ~1 µs apart (near-uniform)
				// while the queue holds `depth` pending events throughout.
				for i := 0; i < depth; i++ {
					k.Schedule(time.Duration(i)*time.Microsecond, fn)
				}
				b.ResetTimer()
				k.Run(0)
			})
		}
	}
}

// BenchmarkWorkloadGeneration measures trace synthesis cost.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Generate(1000, workload.ShareGPT(), workload.Poisson(10), int64(i))
	}
}

// BenchmarkPseudoEmbedding measures the deterministic embedding generator.
func BenchmarkPseudoEmbedding(b *testing.B) {
	text := "the scheduler allocates whole gpus request eight for a full node"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serving.PseudoEmbedding(text, 4096)
	}
}
