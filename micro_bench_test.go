package first_test

// Substrate micro-benchmarks: the raw costs of the core data-plane pieces,
// independent of any experiment scenario.

import (
	"testing"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

func benchEngineStep(b *testing.B) {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := serving.NewEngine(serving.Config{Model: model, GPU: perfmodel.A100_40})
	if err != nil {
		b.Fatal(err)
	}
	// Keep a saturated batch alive throughout.
	for i := 0; i < 512; i++ {
		eng.Submit(0, 100, 1<<20, nil)
	}
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Step(now)
		now += res.Duration
	}
}

// BenchmarkKernelEvents measures DES kernel event throughput.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	var fn func()
	remaining := b.N
	fn = func() {
		remaining--
		if remaining > 0 {
			k.Schedule(time.Microsecond, fn)
		}
	}
	k.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	k.Run(0)
}

// BenchmarkWorkloadGeneration measures trace synthesis cost.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Generate(1000, workload.ShareGPT(), workload.Poisson(10), int64(i))
	}
}

// BenchmarkPseudoEmbedding measures the deterministic embedding generator.
func BenchmarkPseudoEmbedding(b *testing.B) {
	text := "the scheduler allocates whole gpus request eight for a full node"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serving.PseudoEmbedding(text, 4096)
	}
}
