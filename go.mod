module github.com/argonne-first/first

go 1.22
