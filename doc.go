// Package first is a from-scratch Go reproduction of "FIRST: Federated
// Inference Resource Scheduling Toolkit for Scientific AI Model Access"
// (Tanikanti et al., SC 2025): an Inference-as-a-Service stack for HPC with
// an OpenAI-compatible gateway, a Globus-Compute-style function fabric,
// PBS-like schedulers over simulated GPU clusters, vLLM-style continuous-
// batching serving engines, federation-aware routing, batch mode, and a
// WebUI backend — plus a discrete-event harness that regenerates every
// table and figure in the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
//
// # Simulation substrate
//
// The evaluation data plane is allocation-free at steady state:
//
//   - internal/sim.Kernel stores events by value in an index-addressed
//     4-ary min-heap, so Schedule performs no per-event allocation and no
//     interface boxing; the heap's backing array doubles as the free list.
//   - internal/serving.Engine keeps its waiting queue in a ring buffer
//     (never re-slicing a pinned backing array), reuses one scratch buffer
//     for StepResult.Completed across iterations, recycles Sequence objects
//     through Release/Submit, and resolves Abort by binary search over the
//     ID-ordered ring plus a lazy tombstone instead of an O(n) scan.
//   - internal/metrics.Histogram shards observations over independently
//     locked slots (one shared bucket-bounds table for all histograms), so
//     Observe never serializes the data plane on a single mutex.
//
// Experiments fan out: internal/experiments.Fleet runs the independent
// cells of each figure/table (rate points, concurrency×window cells,
// ablation arms) on parallel goroutines. Every cell owns a private kernel
// and deterministic seeds, so fleet runs are byte-identical to the
// sequential reference (workers=1) at any worker count.
//
// cmd/first-bench renders the paper-vs-measured report (-workers selects
// the fleet size) and, with -json (or -json-out PATH), appends a
// machine-readable BENCH_<n>.json perf record — wall time plus headline
// metrics per experiment — so the substrate's performance trajectory
// accumulates across PRs. `make bench` does the same via the Makefile.
package first
