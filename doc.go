// Package first is a from-scratch Go reproduction of "FIRST: Federated
// Inference Resource Scheduling Toolkit for Scientific AI Model Access"
// (Tanikanti et al., SC 2025): an Inference-as-a-Service stack for HPC with
// an OpenAI-compatible gateway, a Globus-Compute-style function fabric,
// PBS-like schedulers over simulated GPU clusters, vLLM-style continuous-
// batching serving engines, federation-aware routing, batch mode, and a
// WebUI backend — plus a discrete-event harness that regenerates every
// table and figure in the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
//
// # Simulation substrate
//
// The evaluation data plane is allocation-free at steady state:
//
//   - internal/sim.Kernel schedules through a self-tuning calendar queue: a
//     power-of-two ring of time buckets (lazy-sorted, width and count
//     re-tuned from the observed schedule) with a single-event fast slot
//     for the ping-pong regime and a 4-ary min-heap as the far-future
//     overflow — O(1) amortized per event on the near-uniform schedules the
//     figure runs produce, versus O(log n) for the heap. Same-instant
//     events dispatch as one batch (one cursor position, no re-scan between
//     callbacks), which is what the saturated open-loop runs hit hardest.
//     The heap survives as a reference kernel (sim.QueueHeap, first-bench
//     -queue heap): a differential suite proves both queues produce
//     byte-identical results on Fig3, Table1, the storm, and the full
//     rendered report, plus randomized schedule/pop property tests.
//   - internal/serving.Engine keeps its waiting queue in a ring buffer
//     (never re-slicing a pinned backing array), reuses one scratch buffer
//     for StepResult.Completed across iterations, recycles Sequence objects
//     through Release/Submit, and resolves Abort by binary search over the
//     ID-ordered ring plus a lazy tombstone instead of an O(n) scan.
//   - internal/metrics shards its hot instruments: Histogram observations
//     scatter over independently locked slots (one shared bucket-bounds
//     table for all histograms) and Counter increments scatter over
//     cache-line-padded atomic stripes, so neither ever serializes the data
//     plane on a single mutex or contended cache line.
//
// # Sharded gateway front-end
//
// The live gateway's mutable front-end state is sharded
// (internal/gateway/frontend.go): the response cache, the per-user
// rate-limiter table, and their locks split across N power-of-two shards
// keyed by user-sub / cache-key hash, and the response ID counter is
// atomic. Each shard holds a bounded LRU slice of the response cache
// (hot entries survive insertion churn; the old front-end wiped the whole
// map at 4096 entries) and a token-bucket table whose idle entries are
// swept on a TTL, so a storm of one-shot users cannot grow it without
// bound. gateway.Config.Shards tunes the split — 0 derives from
// GOMAXPROCS, 1 reproduces the historical single-lock behaviour —
// reachable via first-gateway's -shards flag and the config file's
// gateway.shards key. The arrival-storm experiment (first-bench -exp
// storm) quantifies the difference: at 10⁶ offered arrivals/s a single
// lock admits ~250k req/s with seconds of queueing delay while 16 shards
// absorb the full storm at microsecond latency. go test -race exercises
// the sharded paths with parallel stress tests, and AllocsPerRun
// regression tests pin the admission hot path (limiter check + cache hit)
// at zero allocations.
//
// # Federation at scale
//
// The federate scenario family (first-bench -exp federate) is the first
// experiment where every layer of the reproduction runs inside one
// simulated system, at beyond-paper scale: 10⁶ open-loop requests plus 10⁴
// closed-loop WebUI sessions flow through the sharded gateway front-end,
// are routed by the real federation.Select priority ladder (§4.5: active →
// capacity → first-configured) over live snapshots, and land on 2-8
// simulated clusters. Each cluster pairs a real inventory
// (cluster.Cluster) with a real PBS-like scheduler — scheduler.Scheduler
// gained a deterministic Config.Timer hook so the DES kernel drives its
// Queued→Starting→Running prologue and walltime machinery with no
// goroutines — and serves three models on continuous-batching engine
// instances. Deployments churn mid-run: serve walltimes expire, instances
// drain (unadmitted work is pulled back via serving.Engine's
// EachWaiting/Abort and migrated to other clusters), batches that outlive
// the drain grace are hard-killed by the scheduler's real TimedOut timer
// (survivors collected via EachRunning and migrated), and pending demand
// cold-restarts deployments through the full scheduler lifecycle —
// competing with background science jobs for GPUs, which is what pushes
// the ladder onto its capacity and first-configured rungs. The experiment
// reports per-rung routing counts, migration counts and migrated-request
// latency, cold starts / drains / hard kills, and per-cluster GPU
// utilization. A differential suite pins the family byte-identical across
// fleet worker counts and calendar/heap kernels; the full-scale suite runs
// in the nightly CI job (make federate-night), with a scaled-down family
// guarding every PR.
//
// # Auto-scaling inside a federated cluster
//
// Each (cluster, model) deployment in the DES federation is a pool of
// 1..MaxInstances engine incarnations (desmodel.AutoScaleParams; the zero
// value pins pools at one instance, the pre-autoscaler behaviour). A
// per-cluster policy tick — one deterministic kernel event per Interval —
// evaluates every pool against two watermarks on queue depth per live
// instance: sustained depth above HiWater (HiSustain consecutive ticks)
// grows the pool, with every growth step paying the scheduler's real
// Queued→Starting→Running cold-start path and competing with background
// science jobs for GPUs; sustained depth below LoWater (LoSustain ticks)
// shrinks it, preferring to cancel an incarnation still waiting in the
// scheduler queue (free) and otherwise draining the emptiest serving
// instance through the same drain/migrate machinery walltime churn uses.
// Growth decisions at the MaxInstances cap are counted as refused. The
// defaults (DefaultAutoScaleParams) are 10 s ticks, HiWater 16, LoWater 2,
// sustain 2/4, cap 4. Three liveness rules are load-bearing, found by the
// randomized property sweep: LoWater is clamped to HiWater/2 (overlapping
// bands let a scale-up immediately satisfy the shrink condition and the
// pool oscillates forever, cancelling every incarnation before its prologue
// completes), a pool with parked demand never shrinks, and a scale-down
// never targets the pool's only live instance. Routing is instance-aware:
// federation.EndpointInfo carries the live instance count and Select
// tie-breaks active endpoints on depth per instance (cross-multiplied, so
// ties stay exact), while inside a pool requests go to the least-loaded
// serving instance — both hot paths pinned at 0 allocs/op (scaler_tick /
// scaler_pick in the BENCH record, plus AllocsPerRun tests).
//
// The autoscale scenario family (first-bench -exp autoscale) is Fig4 beyond
// paper size: open-loop traces whose offered rate and hot model are
// functions of virtual time — "diurnal" swings the rate sinusoidally while
// the hot model rotates each period, "bursty" fires a 4× square-wave burst
// each period — over 2-8 clusters, forcing pools to grow under each wave
// and drain behind it while walltime churn and the priority ladder keep
// firing. The report shows scale-up/scale-down/refused counts, peak
// instances, cold starts, drains, kills, migrations, and utilization; a
// differential suite pins the family byte-identical across fleet worker
// counts and calendar/heap kernels (scaled-down family per PR, full family
// nightly via make autoscale-night).
//
// # Predictive scaling & drain-aware routing
//
// The reactive watermarks above only act after backlog has already built —
// every wave eats one full cold start (prologue + weights load) before new
// capacity serves. Setting AutoScaleParams.Predictive arms two
// forecast-driven pre-warm paths on top of the reactive policy (which keeps
// running unchanged beneath them). Each deployment feeds a desmodel.Forecast
// — a Holt double-exponential smoother (level + trend, fixed-size value
// state, 0 allocs/op on observe and predict; forecast_observe in the BENCH
// record) — with per-tick arrival and completion counts. At each tick the
// scaler projects depth one cold start ahead (PredictSum of arrivals minus
// the completion level over the horizon): when the projection crosses
// HiWater×live while current depth has not, the incarnation starts now, so
// its prologue+load overlaps the wave's rise instead of following it. The
// second path arms a per-incarnation timer one cold start before the
// serve-walltime drain: a pool with standing work and room starts the
// replacement early enough to hand over without a gap (a sibling already on
// the way up does not block it — walltime drains are certain, not
// speculative). Both paths respect MaxInstances and count as PreWarms in
// FedClusterStats (also included in ColdStarts: they ride the same
// scheduler path).
//
// Drain-aware routing closes the other half of the churn penalty: with
// FederationParams.CordonLead set, each serving incarnation is flagged
// cordoned that long before its walltime drain. Inside a pool, least-loaded
// selection passes over cordoned incarnations while any uncordoned sibling
// serves; across clusters, federation.EndpointInfo carries Cordoned and
// DrainingAt, and Select demotes a cordoned endpoint below every other
// viable candidate — but still above first-configured, so work is never
// parked while capacity exists. The live router mirrors this through
// fabric.Deployment.CordonInfo (instances flagged stopping drop out of the
// advertised count). All of it is zero-value-off: with Predictive and
// CordonLead unset, every decision is byte-identical to the reactive
// policy, pinned by the differential families (the autoscale short family
// carries one predictive cell through make check and make par-diff, and the
// full family's predictive twins run reactive-vs-predictive on identical
// traces in the nightly suite and the BENCH record).
//
// # Parallel DES
//
// The federation families can run each cell on a sharded kernel
// (first-bench -par N, experiments.Fleet.Par, desmodel.NewParFederation):
// the gateway/router side lives on shard 0 and each cluster — scheduler,
// deployment pools, engines, background churn, auto-scaler — on its own
// sim.Kernel shard, advanced together by sim.ShardSet under conservative
// (Chandy–Misra–Bryant-style) synchronization. The contract has three
// parts. Window: every round computes W = min over shards of the next
// pending event time and executes all events in [W, W+L) on every shard,
// where L is the lookahead; shards within a window run concurrently on up
// to Par window executors (Par=1 is the zero-goroutine reference the
// par-diff suite pins against). Lookahead: L is the minimum cross-shard
// interaction latency — the federation funds it with ParParams.CrossLatency
// (default 50 ms), charged on every router↔cluster hop (request delivery,
// migration return, completion callback) — so a message sent during the
// current window can only land at or after W+L, never inside an interval a
// peer shard has already executed. Mailboxes: cross-shard sends enqueue
// into per-(src,dst) ordered mailboxes; at the window barrier the
// coordinator drains them in fixed (destination, source, FIFO) order,
// assigning destination sequence numbers deterministically, so identical
// configurations replay identical event interleavings regardless of
// executor count or queue kind. Zero lookahead would force W+L = W —
// every barrier re-synchronizes at the very next event and the "parallel"
// run degrades to the sequential kernel with extra coordination; that is
// why sim.MinLookahead exists and why the parallel mode is a *model
// variant* (snapshot-based routing reads, explicit cross-shard latency)
// rather than a byte-identical replacement for Par=0: router decisions
// read cluster state snapshots published at barriers instead of live
// fields mid-window. Within the parallel mode, byte-identity is total:
// `make par-diff` (a required CI job) pins federate, autoscale, and the
// livefed calibration twin identical across Par 1/2/8 × calendar/heap
// against the Par=1 reference, with full-scale versions in the nightly
// matrix; randomized-topology property tests (2–8 clusters, random
// lookahead, kill/migration/BG schedules) assert conservation,
// exactly-once completion, and digest equality. Wall-clock speedup
// requires GOMAXPROCS > 1; on a single-core host the executors serialize
// and the federate_par BENCH series records coordination overhead, not
// parallelism. The per-hop mailbox cost is pinned at 0 allocs/op steady
// state (shard_mailbox micro).
//
// # Resilience & failover
//
// The live stack survives endpoint death, network faults, and mid-stream
// disconnects through internal/resilience: a retry Policy (capped
// exponential backoff with full jitter, per-attempt timeouts, Retry-After
// honoring — the client SDK replays JSON calls and unconsumed streams under
// client.WithRetry, sleeping through an injectable client.WithSleep so
// scaled-clock harnesses don't stall on wall time), a per-endpoint circuit
// Breaker (closed → open → half-open with a sliding-window failure rate,
// probe admission, and a CanAttempt hot path pinned at 0 allocs/op — the
// breaker_allow micro series), and a passive health Set fed by every routed
// response. The gateway consults breakers via federation.Router's
// RouteAvoiding ladder (open endpoints are skipped; a half-open endpoint
// admits one probe), fails a request over to the next-best cluster on
// endpoint error (failover_attempts / failover_success counters), and
// degrades gracefully when every candidate's breaker is open: 503 + a
// Retry-After derived from the soonest breaker reopen, counted as
// load_shed. Endpoint-side 401s trigger one token-cache recheck
// (auth_rechecks) instead of failover. Everything is time-parameterized
// (breakers never read a wall clock) and zero-value-inert: a zero Policy is
// one attempt, a zero BreakerConfig disables breaker bookkeeping, so the
// resilience layer changes nothing until configured.
//
// The livefed family (first-bench -exp livefed) puts that layer under fire
// on the LIVE stack — real client SDK, sharded gateway, breaker-aware
// router, fabric hub, engines on a 20000× scaled clock — via
// internal/chaosnet, a seeded fault-injecting http.RoundTripper (refused
// dials, synthesized 503 bursts with Retry-After, latency spikes, SSE cuts
// mid-stream) plus an endpoint-side fault-burst schedule
// (chaosnet.Windows) that sweeps failures across endpoints round-robin,
// credential-rejection lanes, and a hard kill + cold restart of a victim
// endpoint mid-run through the real scheduler. Every draw is a pure
// function of (seed, request key, attempt), so the fault schedule — and
// the whole outcome census — replays identically across runs; breaker
// timing runs on a logical clock advanced per issued request. The
// invariant under fire is zero lost requests: every request resolves as
// success, failover-success, shed, or a typed client error, never a hang
// or an untyped failure (make chaos gates this under the race detector).
//
// Calibration methodology. Each live cell executes a single serializable
// churn plan — a chaosnet.Schedule: endpoint kills, cold restarts, and
// background GPU claims/releases keyed by request index, plus the fault
// windows and the arrival rate measured during the live run — and the DES
// federation twin replays that exact schedule (desmodel.ReplayParams).
// Index time is the shared time base: the live driver fires every event
// due at index i before issuing request i, and the twin's open-loop driver
// calls ReplayAdvance(i) before arrival i. The twin routes with real
// resilience.Breakers in the live gateway's configuration on the same
// one-second-per-request logical clock, draws the same pure
// Windows.Faulty(seed, index, endpoint, attempt) fault function, and
// re-routes a faulted placement to the next ladder candidate — so twin
// migrations-per-request is the DES name for the gateway's
// failover-attempts-per-request. The comparison is then gated, not
// eyeballed: every cell's live-vs-twin routing-rung shares must agree
// within ±5 percentage points and the failover-vs-migration rates within a
// 2× ratio (experiments.Calibrate; both sides under 0.01/req is vacuously
// calibrated). The BENCH_<n>.json livefed block records the verdict
// (c<N>_calib_pass, _calib_rung_gap_pts, _calib_rate_ratio) next to the
// share columns, `make calibrate` enforces the gate per-PR on the short
// cell, and `make livefed-night` fails the nightly sweep on any trip,
// preserving the divergent cell's executed schedule under calib-artifacts/
// — the schedule is the complete reproduction recipe, so the twin can be
// re-run against it offline byte-for-byte.
//
// Experiments fan out: internal/experiments.Fleet runs the independent
// cells of each figure/table (rate points, concurrency×window cells,
// ablation arms) on parallel goroutines. Every cell owns a private kernel
// and deterministic seeds, so fleet runs are byte-identical to the
// sequential reference (workers=1) at any worker count. Each worker owns a
// desmodel.Arena that recycles its kernel and serving engines across the
// cells it executes (Reset, not reallocate) — reset structures are
// behaviourally identical to fresh ones, so arena reuse never perturbs
// determinism. The desmodel drivers (engine iteration loop, hub lanes)
// run on closures bound once at construction, so saturated loops schedule
// no fresh closure per event.
//
// cmd/first-bench renders the paper-vs-measured report (-workers selects
// the fleet size) and, with -json (or -json-out PATH), appends a
// machine-readable BENCH_<n>.json perf record — wall time plus headline
// metrics per experiment, plus substrate micro-benchmarks (ns/op and
// allocs/op) — so the substrate's performance trajectory accumulates
// across PRs. `make bench` does the same via the Makefile, and `make
// bench-diff` (first-bench -diff) compares the two newest records,
// failing on >20% slowdowns or any extra allocations per op (experiment
// walls and micro series record the fastest of three repetitions, so host
// noise cannot fake a regression; with fewer than two records, e.g. a fork
// checkout, the diff skips cleanly instead of failing). Records accumulate
// one per session on whatever machine that session got, so thresholds are
// normalized by per-class host-drift medians — experiment walls and micro
// ns/op drift apart when a contended host inflates multi-ms walls without
// slowing tight loops — and a timing series that regressed only against
// the newest record, not the one before it, is treated as that record's
// per-series outlier rather than a code regression (allocation counts,
// being deterministic, are exempt from both defenses). `make race` runs
// the tier-1 suite under the race detector; `make chaos` races the short
// livefed storm; `make calibrate` enforces the sim-vs-real tolerance gate
// on the same cell; `make par-diff` pins the parallel kernel byte-identical
// to its reference; `make check` includes a brief fuzz pass over the
// openaiapi request and SSE parsers. All of these run as required CI jobs
// (.github/workflows/ci.yml) — check on an {oldstable, stable} Go matrix
// with module/build caching, bench records and the race/chaos/calibrate/
// par-diff logs uploaded as artifacts; PR pushes cancel superseded runs of
// the same ref and every job carries a timeout — and a scheduled nightly
// matrix runs what is too slow per-PR as independent legs with per-leg log
// artifacts: govulncheck + 60 s of parser fuzzing, the full-scale federate
// and autoscale determinism suites (sequential and sharded-parallel
// kernels), and the full livefed chaos sweep, which fails on any
// calibration-gate trip and uploads divergent schedules.
//
// # Static analysis
//
// The repo guards its own invariants with firstlint (cmd/firstlint,
// internal/lint), a stdlib-only multichecker in the go/analysis idiom:
// `make lint` runs it over ./... and is part of the tier-1 `make check`
// chain and a required CI job. Four analyzers encode the bug classes past
// PRs actually hit:
//
//   - det — in the deterministic packages (internal/sim, desmodel,
//     federation, scheduler, cluster, serving, and the experiments
//     report/benchjson files) flags wall-clock reads (time.Now/Since),
//     draws from the global math/rand source, goroutine launches, and map
//     ranges whose iteration order is not visibly sorted before it can
//     escape into reports or event schedules.
//   - clockonly — forbids time.Sleep/After/AfterFunc/Tick/NewTimer/
//     NewTicker everywhere outside internal/clock, so every wait flows
//     through clock.Clock (or clock.SleepCtx) where scaled harnesses stay
//     in control — the PR 6 WithSleep bug class.
//   - seedflow — polices seed derivation in the seed-minting packages
//     (chaosnet, workload, experiments, desmodel): ad-hoc rand.New/
//     NewSource streams, fnv hashing never finalized through the shared
//     splitmix64 Mix, and xor-folds of two or more variables without a Mix
//     in the chain — the PR 7 cell-seed collision class.
//   - hotpath — cross-checks //first:hotpath annotations three ways: every
//     function called directly from a 0-alloc AllocsPerRun pin must carry
//     the annotation, every annotation must be reachable from some pin
//     through the package's static call graph, and the compiler's escape
//     analysis (go build -gcflags=-m, parsed by the driver) must show no
//     heap escapes inside an annotated body.
//
// Suppressions are explicit and audited: `//firstlint:allow <analyzer>
// <reason>` silences that analyzer on its own line (trailing comment) or
// the next code line (standalone comment); the reason is mandatory, unknown
// verbs or analyzer names are findings, and an allow that suppresses
// nothing is itself reported, so suppressions cannot rot. `//first:hotpath
// [note]` is only valid in a function declaration's doc comment. Analyzer
// fixtures live under internal/lint/testdata/src with `// want` expectations
// run by internal/lint/linttest. The framework mirrors the
// golang.org/x/tools/go/analysis API shape (Analyzer/Pass/Reportf) but is
// built on go/ast + go/types with the source importer, so it needs no
// network or vendored dependencies; migrating onto x/tools/go/analysis and
// its multichecker when the dependency is available is a mechanical swap.
package first
