// Package first is a from-scratch Go reproduction of "FIRST: Federated
// Inference Resource Scheduling Toolkit for Scientific AI Model Access"
// (Tanikanti et al., SC 2025): an Inference-as-a-Service stack for HPC with
// an OpenAI-compatible gateway, a Globus-Compute-style function fabric,
// PBS-like schedulers over simulated GPU clusters, vLLM-style continuous-
// batching serving engines, federation-aware routing, batch mode, and a
// WebUI backend — plus a discrete-event harness that regenerates every
// table and figure in the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package first
