# FIRST reproduction — build/verify/perf-record targets.

GO ?= go

.PHONY: all check fmt vet build test bench

all: check

# check is the tier-1 gate every PR must keep green.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the micro/figure benchmarks and appends a BENCH_<n>.json perf
# record so every PR extends the substrate's performance trajectory.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/first-bench -exp fig3 -json
