# FIRST reproduction — build/verify/perf-record targets.

GO ?= go

.PHONY: all check fmt vet build test fuzz race bench bench-diff

all: check

# check is the tier-1 gate every PR must keep green; the brief fuzz pass
# keeps malformed request bodies from ever panicking a handler.
check: fmt vet build test fuzz

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fuzz briefly mutates the committed openaiapi seed corpus (testdata/fuzz).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRequest$$' -fuzztime 3s ./internal/openaiapi

# race runs the tier-1 suite under the race detector — the gate for the
# sharded gateway front-end's parallel stress tests.
race:
	$(GO) test -race ./...

# bench runs the micro/figure benchmarks and appends a BENCH_<n>.json perf
# record so every PR extends the substrate's performance trajectory.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/first-bench -exp fig3 -json

# bench-diff gates the trajectory: compares the two newest BENCH_<n>.json
# records and fails on >20% ns/op (or wall) regressions or any allocs/op
# increase.
bench-diff:
	$(GO) run ./cmd/first-bench -diff
