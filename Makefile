# FIRST reproduction — build/verify/perf-record targets.

GO ?= go
# FUZZTIME is the fuzzing budget: 3s in the per-PR gate, 60s nightly
# (make fuzz FUZZTIME=60s).
FUZZTIME ?= 3s

.PHONY: all check fmt vet build test fuzz lint race chaos calibrate bench bench-diff par-diff federate-night autoscale-night livefed-night

all: check

# check is the tier-1 gate every PR must keep green; the brief fuzz pass
# keeps malformed request bodies from ever panicking a handler; lint runs
# the repo's own firstlint analyzers (det, clockonly, seedflow, hotpath).
check: fmt vet build test fuzz lint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repo-specific static analyzers (see internal/lint and the
# "Static analysis" section of doc.go): det, clockonly, seedflow, and the
# hotpath escape-analysis cross-check for //first:hotpath bodies.
lint:
	$(GO) run ./cmd/firstlint ./...

# fuzz mutates the committed openaiapi seed corpora (testdata/fuzz) for
# FUZZTIME each (3s in `make check`; the nightly CI job runs 60s): the
# request parser and the SSE stream reader (truncation / malformed frames).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRequest$$' -fuzztime $(FUZZTIME) ./internal/openaiapi
	$(GO) test -run '^$$' -fuzz '^FuzzReadSSE$$' -fuzztime $(FUZZTIME) ./internal/openaiapi

# race runs the tier-1 suite under the race detector — the gate for the
# sharded gateway front-end's parallel stress tests. The experiments package
# regenerates the full bench suite here (TestBenchRecordRoundTrip), which
# under the detector's ~10× slowdown outgrew go test's default 10-minute
# package budget; 25m fits the CI race job's 30-minute ceiling.
race:
	$(GO) test -race -timeout 25m ./...

# chaos drives the short livefed storm — chaosnet fault transport, endpoint
# fault bursts, a kill + cold restart mid-run — through the live stack under
# the race detector, checking the zero-lost invariant and the deterministic
# outcome schedule.
chaos:
	$(GO) test -race -short -run '^TestLiveFed' -v ./internal/experiments

# bench runs the micro/figure benchmarks and appends a BENCH_<n>.json perf
# record so every PR extends the substrate's performance trajectory.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
	$(GO) run ./cmd/first-bench -exp fig3 -json

# bench-diff gates the trajectory: compares the two newest BENCH_<n>.json
# records and fails on >20% ns/op (or wall) regressions or any allocs/op
# increase. With fewer than two records (fork/shallow checkouts) it skips
# with a notice and exits 0.
bench-diff:
	$(GO) run ./cmd/first-bench -diff

# par-diff runs the parallel-kernel byte-identity suite on the short
# families: federate, autoscale (including the predictive/cordon cell, so
# the forecast and drain-aware-routing paths are pinned per-PR), and the
# livefed calibration twin must be byte-identical across -par worker counts
# (1/2/8) and queue kinds against the Par=1 zero-goroutine reference.
# Required per-PR CI job; the nightly matrix legs run the full-scale
# versions (TestFederateFullScalePar, TestAutoScaleFullScalePar).
par-diff:
	$(GO) test -run '^TestParDiff|^TestParFederateCompletes$$' -v ./internal/experiments

# federate-night runs the full-scale federation determinism suite — 10⁶
# open-loop requests + 10⁴ WebUI sessions, byte-identical across worker
# counts and queue kinds, plus the parallel-kernel gate (FullScalePar).
# Too slow for per-PR CI; the nightly job runs it.
federate-night:
	FIRST_FEDERATE_FULL=1 $(GO) test -run '^TestFederateFullScale' -v -timeout 30m ./internal/experiments

# autoscale-night runs the full-scale auto-scaling determinism suite — the
# complete diurnal/bursty family (reactive cells plus their predictive
# twins) with every elasticity assertion and the predictive-vs-reactive
# sweep (same-trace p99/refused comparison), byte-identical across worker
# counts and queue kinds. Per-PR CI keeps the scaled-down family as the
# fast guard; the nightly job runs this one.
autoscale-night:
	FIRST_AUTOSCALE_FULL=1 $(GO) test -run '^TestAutoScaleFullScale' -v -timeout 30m ./internal/experiments

# calibrate runs the per-PR calibration gate: the short livefed cell live,
# its executed schedule replayed into the DES twin, rung shares within
# ±5 pts and the failover-vs-migration ratio within 2× — or the target fails.
calibrate:
	$(GO) test -short -run '^TestLiveFedCalibrationGate$$' -v ./internal/experiments

# livefed-night regenerates the full live-chaos family (the nightly cells:
# 2000- and 3000-request storms with their DES calibration twins), prints
# the outcome census + calibration tables the nightly CI job archives, and
# FAILS if any cell trips the tolerance gate — preserving the divergent
# schedule under calib-artifacts/ for offline replay.
livefed-night:
	$(GO) run ./cmd/first-bench -exp livefed -calib-out calib-artifacts
